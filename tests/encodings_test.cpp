#include "encodings/csp1.hpp"
#include "encodings/csp2_generic.hpp"

#include <gtest/gtest.h>

#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::enc {
namespace {

using mgrts::testing::example1;
using rt::Platform;
using rt::TaskSet;

TEST(Csp1, Example1ModelShape) {
  const TaskSet ts = example1();
  const Csp1Model model = build_csp1(ts, Platform::identical(2));
  EXPECT_EQ(model.hyperperiod, 12);
  EXPECT_EQ(model.tasks, 3);
  EXPECT_EQ(model.processors, 2);
  EXPECT_EQ(model.solver->variable_count(), 3 * 2 * 12);
}

TEST(Csp1, OutOfWindowVariablesFixedAtRoot) {
  const TaskSet ts = example1();
  const Csp1Model model = build_csp1(ts, Platform::identical(2));
  // tau3 has no window at t = 2 (windows {0,1},{3,4},...).
  for (rt::ProcId j = 0; j < 2; ++j) {
    const auto& d = model.solver->domain(model.var(2, j, 2));
    ASSERT_TRUE(d.is_fixed());
    EXPECT_EQ(d.value(), 0);
  }
  // tau1 covers every slot: variables stay open.
  EXPECT_FALSE(model.solver->domain(model.var(0, 0, 0)).is_fixed());
}

TEST(Csp1, SolvesExample1AndDecodesValidSchedule) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  Csp1Model model = build_csp1(ts, p);
  const auto outcome = model.solver->solve({});
  ASSERT_EQ(outcome.status, csp::SolveStatus::kSat);
  const rt::Schedule schedule = decode_csp1(model, outcome.assignment);
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, schedule));
}

TEST(Csp1, InfeasibleOnSingleProcessor) {
  Csp1Model model = build_csp1(example1(), Platform::identical(1));
  EXPECT_EQ(model.solver->solve({}).status, csp::SolveStatus::kUnsat);
}

TEST(Csp1, VariableBudgetThrows) {
  csp::SolverLimits limits;
  limits.max_variables = 10;  // far below 72
  EXPECT_THROW(
      static_cast<void>(build_csp1(example1(), Platform::identical(2), limits)),
      ResourceError);
}

TEST(Csp1, RejectsArbitraryDeadlines) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, rt::DeadlineModel::kArbitrary);
  EXPECT_THROW(static_cast<void>(build_csp1(ts, Platform::identical(1))),
               ValidationError);
}

TEST(Csp1, HeterogeneousZeroRateFixesVariables) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 1}});
  const Platform p = Platform::heterogeneous({{1, 0}});
  Csp1Model model = build_csp1(ts, p);
  // tau1 can never run on P2.
  for (rt::Time t = 0; t < model.hyperperiod; ++t) {
    const auto& d = model.solver->domain(model.var(0, 1, t));
    ASSERT_TRUE(d.is_fixed());
    EXPECT_EQ(d.value(), 0);
  }
  const auto outcome = model.solver->solve({});
  ASSERT_EQ(outcome.status, csp::SolveStatus::kSat);
  EXPECT_TRUE(
      rt::is_valid_schedule(ts, p, decode_csp1(model, outcome.assignment)));
}

TEST(Csp1, HeterogeneousWeightedAmountEq11) {
  // C = 4 with a rate-2 processor: exactly two busy slots.
  const TaskSet ts = TaskSet::from_params({{0, 4, 3, 3}});
  const Platform p = Platform::heterogeneous({{2}});
  Csp1Model model = build_csp1(ts, p);
  const auto outcome = model.solver->solve({});
  ASSERT_EQ(outcome.status, csp::SolveStatus::kSat);
  const rt::Schedule schedule = decode_csp1(model, outcome.assignment);
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, schedule));
  EXPECT_EQ(schedule.units_of(0), 2);
}

TEST(Csp1, HeterogeneousParityInfeasible) {
  // C = 3 on a rate-2-only platform: equality (11) cannot be met.
  const TaskSet ts = TaskSet::from_params({{0, 3, 3, 3}});
  const Platform p = Platform::heterogeneous({{2}});
  Csp1Model model = build_csp1(ts, p);
  EXPECT_EQ(model.solver->solve({}).status, csp::SolveStatus::kUnsat);
}

// ------------------------------------------------------------ CSP2 generic

TEST(Csp2Generic, Example1ModelShape) {
  const TaskSet ts = example1();
  const Csp2GenericModel model =
      build_csp2_generic(ts, Platform::identical(2));
  EXPECT_EQ(model.solver->variable_count(), 2 * 12);
  EXPECT_EQ(model.idle_value(), 3);
}

TEST(Csp2Generic, WindowRemovalAtRoot) {
  const TaskSet ts = example1();
  const Csp2GenericModel model =
      build_csp2_generic(ts, Platform::identical(2));
  // At t=2 task tau3 (value 2) is out of window on every processor.
  for (rt::ProcId j = 0; j < 2; ++j) {
    EXPECT_FALSE(model.solver->domain(model.var(j, 2)).contains(2));
    EXPECT_TRUE(model.solver->domain(model.var(j, 2)).contains(0));
  }
}

TEST(Csp2Generic, SolvesExample1AndValidates) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  Csp2GenericModel model = build_csp2_generic(ts, p);
  const auto outcome = model.solver->solve({});
  ASSERT_EQ(outcome.status, csp::SolveStatus::kSat);
  EXPECT_TRUE(rt::is_valid_schedule(
      ts, p, decode_csp2_generic(model, outcome.assignment)));
}

TEST(Csp2Generic, SymmetryChainsPreserveSatisfiability) {
  for (std::uint64_t k = 0; k < 40; ++k) {
    gen::GeneratorOptions options;
    options.tasks = 4;
    options.processors = 2;
    options.t_max = 4;
    const auto inst = gen::generate_indexed(options, 7, k);
    const Platform p = Platform::identical(inst.processors);

    Csp2GenericOptions with_chains{true};
    Csp2GenericOptions without_chains{false};
    auto a = build_csp2_generic(inst.tasks, p, with_chains);
    auto b = build_csp2_generic(inst.tasks, p, without_chains);
    const auto ra = a.solver->solve({});
    const auto rb = b.solver->solve({});
    ASSERT_TRUE(csp::decided(ra.status));
    ASSERT_TRUE(csp::decided(rb.status));
    EXPECT_EQ(ra.status, rb.status) << "instance " << k;
  }
}

TEST(Csp2Generic, SymmetryChainsPruneSearch) {
  // On a feasible multi-processor instance the chains must not increase the
  // node count dramatically; typically they shrink it.  (Smoke-check of the
  // "reduce the search space" claim; exact ratios are bench material.)
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  auto with_chains = build_csp2_generic(ts, p, Csp2GenericOptions{true});
  auto without_chains = build_csp2_generic(ts, p, Csp2GenericOptions{false});
  const auto ra = with_chains.solver->solve({});
  const auto rb = without_chains.solver->solve({});
  ASSERT_EQ(ra.status, csp::SolveStatus::kSat);
  ASSERT_EQ(rb.status, csp::SolveStatus::kSat);
  EXPECT_LE(ra.stats.nodes, rb.stats.nodes * 2);
}

TEST(Csp2Generic, RootDemandPrunesPreserveVerdicts) {
  // The promoted slack/demand rules are necessary conditions: on every
  // generated instance the pruned model's verdict equals the plain one.
  for (std::uint64_t k = 0; k < 40; ++k) {
    gen::GeneratorOptions options;
    options.tasks = 4;
    options.processors = 2;
    options.t_max = 4;
    const auto inst = gen::generate_indexed(options, 99, k);
    const Platform p = Platform::identical(inst.processors);

    Csp2GenericOptions pruned;
    pruned.root_demand_prunes = true;
    auto a = build_csp2_generic(inst.tasks, p, pruned);
    auto b = build_csp2_generic(inst.tasks, p);
    const auto ra = a.solver->solve({});
    const auto rb = b.solver->solve({});
    ASSERT_TRUE(csp::decided(ra.status));
    ASSERT_TRUE(csp::decided(rb.status));
    EXPECT_EQ(ra.status, rb.status) << "instance " << k;
    if (ra.status == csp::SolveStatus::kSat) {
      EXPECT_TRUE(rt::is_valid_schedule(
          inst.tasks, p, decode_csp2_generic(a, ra.assignment)));
    }
  }
}

TEST(Csp2Generic, RootDemandPrunesRefuteOverloadWithoutSearch) {
  // Two always-tight tasks on one processor: forced demand over [0, 2)
  // exceeds m*L, so the pruned model is unsatisfiable at the root.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}, {0, 2, 2, 2}});
  Csp2GenericOptions pruned;
  pruned.root_demand_prunes = true;
  auto model = build_csp2_generic(ts, Platform::identical(1), pruned);
  const auto outcome = model.solver->solve({});
  EXPECT_EQ(outcome.status, csp::SolveStatus::kUnsat);
  EXPECT_EQ(outcome.stats.nodes, 0);
}

TEST(Csp2Generic, TightJobColumnCountsPostedBehindFlag) {
  // A task whose window exactly equals its WCET must run in every slot of
  // that window: with the flag on, the root propagation already fixes the
  // single-processor column to the tight task.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 4}, {0, 1, 4, 4}});
  Csp2GenericOptions pruned;
  pruned.root_demand_prunes = true;
  auto model = build_csp2_generic(ts, Platform::identical(1), pruned);
  const auto outcome = model.solver->solve({});
  ASSERT_EQ(outcome.status, csp::SolveStatus::kSat);
  // Slots 0 and 1 belong to the tight tau1 in any solution.
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(model.var(0, 0))], 0);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(model.var(0, 1))], 0);
}

TEST(Csp2Generic, TooManyTasksRejected) {
  std::vector<rt::TaskParams> params;
  for (int k = 0; k < 64; ++k) params.push_back({0, 1, 1, 1});
  const TaskSet ts = TaskSet::from_params(params);
  EXPECT_THROW(
      static_cast<void>(build_csp2_generic(ts, Platform::identical(2))),
      ResourceError);
}

TEST(Csp2Generic, HeterogeneousDomainRule) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 1}, {0, 1, 1, 1}});
  const Platform p = Platform::heterogeneous({{1, 0}, {0, 1}});
  Csp2GenericModel model = build_csp2_generic(ts, p);
  // P1 cannot run tau2; P2 cannot run tau1.
  EXPECT_FALSE(model.solver->domain(model.var(0, 0)).contains(1));
  EXPECT_FALSE(model.solver->domain(model.var(1, 0)).contains(0));
  const auto outcome = model.solver->solve({});
  ASSERT_EQ(outcome.status, csp::SolveStatus::kSat);
  EXPECT_TRUE(rt::is_valid_schedule(
      ts, p, decode_csp2_generic(model, outcome.assignment)));
}

// ------------------------------------------------ cross-encoding agreement

struct AgreementParam {
  std::uint64_t seed;
  bool offsets;
};

class EncodingAgreement : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(EncodingAgreement, Csp1Csp2OracleSameVerdict) {
  // Theorem 1 + Theorem 2, checked empirically: CSP1, CSP2-generic and the
  // flow oracle agree on feasibility; all produced witnesses validate.
  const auto [seed, offsets] = GetParam();
  for (std::uint64_t k = 0; k < 12; ++k) {
    gen::GeneratorOptions options;
    options.tasks = 4;
    options.processors = 2;
    options.t_max = 4;
    options.with_offsets = offsets;
    const auto inst = gen::generate_indexed(options, seed, k);
    const Platform p = Platform::identical(inst.processors);

    const bool oracle = flow::is_feasible(inst.tasks, p);

    Csp1Model m1 = build_csp1(inst.tasks, p);
    const auto r1 = m1.solver->solve({});
    ASSERT_TRUE(csp::decided(r1.status));
    EXPECT_EQ(r1.status == csp::SolveStatus::kSat, oracle)
        << "CSP1 vs oracle, instance " << k;
    if (r1.status == csp::SolveStatus::kSat) {
      EXPECT_TRUE(rt::is_valid_schedule(inst.tasks, p,
                                        decode_csp1(m1, r1.assignment)));
    }

    Csp2GenericModel m2 = build_csp2_generic(inst.tasks, p);
    const auto r2 = m2.solver->solve({});
    ASSERT_TRUE(csp::decided(r2.status));
    EXPECT_EQ(r2.status == csp::SolveStatus::kSat, oracle)
        << "CSP2 vs oracle, instance " << k;
    if (r2.status == csp::SolveStatus::kSat) {
      EXPECT_TRUE(rt::is_valid_schedule(
          inst.tasks, p, decode_csp2_generic(m2, r2.assignment)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncodingAgreement,
    ::testing::Values(AgreementParam{11, false}, AgreementParam{12, false},
                      AgreementParam{13, true}, AgreementParam{14, true},
                      AgreementParam{15, false}, AgreementParam{16, true}),
    [](const ::testing::TestParamInfo<AgreementParam>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.offsets ? "_offsets" : "_sync");
    });

}  // namespace
}  // namespace mgrts::enc
