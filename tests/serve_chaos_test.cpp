// Chaos soak for the serving layer (DESIGN.md §13): >= 1000 mixed requests
// through the in-process Service with the seed-driven FaultInjector armed
// at ALL eight sites.  The acceptance contract of the daemon, verbatim:
//
//   * zero lost responses — every request, however hostile or however
//     faulted its solve, returns a parseable tagged response;
//   * no flipped verdicts — every DECIDED verdict equals the fault-free
//     flow-oracle truth (faults and cache hits may degrade or shortcut,
//     never change an answer);
//   * malformed / invalid requests keep their deterministic error kinds
//     even while the injector is firing (no fault points live in parsing).
//
// The kCancel site is sticky (its target token stays cancelled), so the
// soak re-arms the injector per chunk with a fresh seed and a fresh cancel
// target: early chunks cover crash/stall/deadline faults, a fired cancel
// poisons at most the remainder of its own chunk — whose requests must
// STILL all be answered (as degraded kTimeout/kCancelled responses).
#include "support/fault.hpp"

#include <gtest/gtest.h>

#if MGRTS_FAULT_INJECTION

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/instance_io.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/platform.hpp"
#include "rt/task_set.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "testing.hpp"

namespace mgrts::serve {
namespace {

using support::FaultInjector;
using support::FaultPlan;
using support::FaultSite;

struct InjectorGuard {
  explicit InjectorGuard(const FaultPlan& plan) { FaultInjector::arm(plan); }
  ~InjectorGuard() { FaultInjector::disarm(); }
};

constexpr unsigned kAllSites =
    FaultPlan::mask(FaultSite::kFlowNetwork) |
    FaultPlan::mask(FaultSite::kJobTable) |
    FaultPlan::mask(FaultSite::kScheduleTable) |
    FaultPlan::mask(FaultSite::kCspVarBudget) |
    FaultPlan::mask(FaultSite::kDeadline) |
    FaultPlan::mask(FaultSite::kCancel) |
    FaultPlan::mask(FaultSite::kPropagator) |
    FaultPlan::mask(FaultSite::kStall);

struct ValidCase {
  std::string body;           ///< original orientation
  std::string permuted_body;  ///< same instance, rotated task order
  bool feasible = false;      ///< fault-free flow-oracle truth
};

std::vector<rt::TaskParams> params_of(const rt::TaskSet& ts) {
  std::vector<rt::TaskParams> params;
  for (rt::TaskId i = 0; i < ts.size(); ++i) {
    params.push_back({ts[i].offset(), ts[i].wcet(), ts[i].deadline(),
                      ts[i].period()});
  }
  return params;
}

// Fixtures plus generated draws, truth taken while the injector is OFF.
std::vector<ValidCase> valid_cases() {
  std::vector<ValidCase> cases;
  const auto add = [&](const rt::TaskSet& ts, const rt::Platform& platform) {
    ValidCase c;
    c.body = core::write_instance_string(ts, platform);
    auto params = params_of(ts);
    std::rotate(params.begin(), params.begin() + 1, params.end());
    c.permuted_body = core::write_instance_string(
        rt::TaskSet::from_params(params, ts.model()), platform);
    c.feasible = flow::is_feasible(ts, platform);
    cases.push_back(std::move(c));
  };
  add(testing::example1(), testing::example1_platform());
  add(testing::light3(), rt::Platform::identical(2));
  add(testing::overloaded1(), rt::Platform::identical(1));
  add(testing::dhall2(), rt::Platform::identical(2));
  gen::GeneratorOptions g;
  g.tasks = 4;
  g.processors = 2;
  g.t_max = 4;
  for (std::uint64_t idx = 0; idx < 8; ++idx) {
    const gen::Instance inst = gen::generate_indexed(g, 20090909, idx);
    add(inst.tasks, rt::Platform::identical(inst.processors));
  }
  return cases;
}

TEST(ServeChaos, ThousandRequestSoakLosesNothingFlipsNothing) {
  ServiceOptions options;
  options.default_timeout_ms = 250;
  Service service(options);

  const std::vector<ValidCase> cases = valid_cases();

  constexpr int kChunks = 10;
  constexpr int kPerChunk = 110;  // 1100 requests >= the 1000-request pin

  std::int64_t sent = 0;
  std::int64_t answered = 0;
  std::int64_t ok_responses = 0;
  std::int64_t error_responses = 0;
  std::int64_t decided_checked = 0;
  std::int64_t faults_delivered = 0;

  for (int chunk = 0; chunk < kChunks; ++chunk) {
    // Fresh seed and fresh cancel target per chunk: deterministic schedule,
    // bounded blast radius for the sticky kCancel site.
    FaultPlan plan;
    plan.seed = 0xC0FFEE00u + static_cast<std::uint64_t>(chunk);
    plan.rate = 0.08;
    plan.sites = kAllSites;
    plan.cancel_target = support::CancelToken::make();
    plan.stall_cap_ms = 25;
    InjectorGuard guard(plan);

    RequestContext context;
    context.cancel = support::CancelToken::linked(plan.cancel_target);

    for (int i = 0; i < kPerChunk; ++i) {
      const int global = chunk * kPerChunk + i;
      ++sent;

      Message response;
      switch (global % 9) {
        case 0: {  // malformed instance text
          Message request;
          request.kind = "solve";
          request.body = "tasks two\n0 1 2 2\nprocessors 1\n";
          response = service.handle_message(request, context);
          EXPECT_EQ(response.kind, "error");
          EXPECT_EQ(response.get("error-kind"), "parse");
          break;
        }
        case 1: {  // structurally invalid system (wcet = 0)
          Message request;
          request.kind = "solve";
          request.body = "tasks 1\n0 0 2 4\nprocessors 1\n";
          response = service.handle_message(request, context);
          EXPECT_EQ(response.kind, "error");
          EXPECT_EQ(response.get("error-kind"), "validation");
          break;
        }
        case 2: {  // raw garbage through the payload funnel
          response = parse_message(
              service.handle("junk frame " + std::to_string(global), context));
          EXPECT_EQ(response.kind, "error");
          EXPECT_EQ(response.get("error-kind"), "protocol");
          break;
        }
        case 3: {  // deadline-starved valid request
          Message request;
          request.kind = "solve";
          request.body = cases[static_cast<std::size_t>(global) % cases.size()]
                             .body;
          request.set("timeout-ms", std::int64_t{0});
          request.set("no-cache", "1");
          response = service.handle_message(request, context);
          EXPECT_EQ(response.kind, "ok");
          break;
        }
        default: {  // valid request; odd rounds use the permuted duplicate
          const ValidCase& c =
              cases[static_cast<std::size_t>(global) % cases.size()];
          Message request;
          request.kind = "solve";
          request.body = (global % 2 != 0) ? c.permuted_body : c.body;
          response = service.handle_message(request, context);
          EXPECT_EQ(response.kind, "ok");
          break;
        }
      }

      // Zero lost responses: whatever happened above, a tagged response
      // with the canonical vocabulary came back.
      ASSERT_FALSE(response.kind.empty());
      ASSERT_TRUE(response.kind == "ok" || response.kind == "error")
          << "request " << global << " answered with '" << response.kind
          << "'";
      ++answered;
      if (response.kind == "ok") {
        ++ok_responses;
      } else {
        ++error_responses;
      }

      const auto verdict_text = response.get("verdict");
      ASSERT_TRUE(verdict_text.has_value());
      const auto verdict = verdict_from_string(*verdict_text);
      ASSERT_TRUE(verdict.has_value())
          << "request " << global << ": unrecognized verdict '"
          << *verdict_text << "'";
      const auto cause_text = response.get("cause");
      ASSERT_TRUE(cause_text.has_value());
      ASSERT_TRUE(cause_from_string(*cause_text).has_value())
          << "request " << global << ": unrecognized cause '" << *cause_text
          << "'";

      // No flipped verdicts: a DECIDED answer for a valid case must equal
      // the fault-free truth (cache hits included — that is the cache
      // soundness pin under fire).
      if (response.kind == "ok" && global % 9 >= 3 &&
          (*verdict == core::Verdict::kFeasible ||
           (*verdict == core::Verdict::kInfeasible &&
            response.get("complete") == "1"))) {
        const ValidCase& c =
            cases[static_cast<std::size_t>(global) % cases.size()];
        EXPECT_EQ(*verdict == core::Verdict::kFeasible, c.feasible)
            << "request " << global << " flipped the verdict under faults";
        ++decided_checked;
      }
    }

    faults_delivered += FaultInjector::active()->fired_total();
  }

  EXPECT_EQ(answered, sent);
  EXPECT_EQ(ok_responses + error_responses, sent);
  EXPECT_EQ(sent, kChunks * kPerChunk);
  // The soak is vacuous unless faults actually fired and verdicts were
  // actually checked against truth.
  EXPECT_GT(faults_delivered, 0);
  EXPECT_GT(decided_checked, 0);

  // The service's own ledger agrees nothing was dropped: every request is
  // accounted for as solved or as a tagged error.
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.requests, sent);
  EXPECT_EQ(counters.solved + counters.parse_errors +
                counters.validation_errors + counters.protocol_errors +
                counters.internal_errors,
            sent);
  // Containment breadcrumbs are visible, not swallowed (retries/degraded
  // may be zero on a lucky schedule; the error counters cannot be).
  EXPECT_GT(counters.parse_errors, 0);
  EXPECT_GT(counters.validation_errors, 0);
  EXPECT_GT(counters.protocol_errors, 0);
}

// The watchdog path under injected stalls, against the real socket server:
// a kStall fault starves a handler's heartbeat; the response still arrives
// (degraded or decided), the daemon survives, and the soak stays bounded by
// the stall cap rather than wedging a worker.
TEST(ServeChaos, InjectedStallsNeverWedgeTheDaemon) {
  ServerOptions options;
  options.socket_path =
      "/tmp/mgrts_chaos_" + std::to_string(::getpid()) + ".sock";
  options.workers = 2;
  options.watchdog_stall_ms = 100;
  Server server(options);
  server.start();

  FaultPlan plan;
  plan.seed = 20090910;
  plan.rate = 0.3;
  plan.sites = FaultPlan::mask(FaultSite::kStall) |
               FaultPlan::mask(FaultSite::kDeadline);
  plan.stall_cap_ms = 400;
  InjectorGuard guard(plan);

  const std::string body = core::write_instance_string(
      testing::example1(), testing::example1_platform());
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    Client client(options.socket_path);
    SolveParams params;
    params.no_cache = true;  // force real solves so the sites get polled
    params.timeout_ms = 200;
    const SolveResult result = client.solve(body, params, /*timeout_ms=*/30'000);
    // ok or tagged error — never a transport failure, never silence.
    ++answered;
    if (result.ok &&
        core::decisive(result.verdict, result.complete)) {
      EXPECT_EQ(result.verdict, core::Verdict::kFeasible)
          << "stall/deadline faults must degrade, not flip";
    }
  }
  EXPECT_EQ(answered, 20);

  {
    Client client(options.socket_path);
    EXPECT_TRUE(client.ping());  // alive after the barrage
  }
  server.stop();
}

}  // namespace
}  // namespace mgrts::serve

#endif  // MGRTS_FAULT_INJECTION
