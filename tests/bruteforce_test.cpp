// Independent ground-truth cross-check.
//
// Everything else in the suite trusts the flow oracle as the referee.
// Here, a third implementation — plain exhaustive enumeration over all
// cyclic schedules, sharing no code or theory with Dinic or the CSP
// machinery — confirms the referee itself on tiny instances (and with it
// the CSP2 solver once more).
#include <gtest/gtest.h>

#include <vector>

#include "csp2/csp2.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/jobs.hpp"
#include "rt/platform.hpp"
#include "rt/task_set.hpp"

namespace mgrts {
namespace {

using rt::ProcId;
using rt::TaskId;
using rt::Time;

/// Exhaustive feasibility by enumerating slot columns left to right.
/// Intentionally naive: per column, choose any set of <= m distinct tasks
/// among those in-window with remaining work; recurse; at the end check
/// every job got exactly C.  Exponential — keep T*m tiny.
class BruteForce {
 public:
  BruteForce(const rt::TaskSet& ts, std::int32_t m)
      : ts_(ts), jobs_(ts), m_(m) {
    T_ = ts.hyperperiod();
    done_.assign(jobs_.size(), 0);
  }

  bool feasible() { return column(0); }

 private:
  bool column(Time t) {
    if (t == T_) {
      for (std::size_t j = 0; j < jobs_.size(); ++j) {
        if (done_[j] != jobs_.jobs()[j].wcet) return false;
      }
      return true;
    }
    std::vector<std::int64_t> eligible;
    for (TaskId i = 0; i < ts_.size(); ++i) {
      const auto job = jobs_.job_at(i, t);
      if (job >= 0 &&
          done_[static_cast<std::size_t>(job)] <
              jobs_.jobs()[static_cast<std::size_t>(job)].wcet) {
        eligible.push_back(job);
      }
    }
    std::vector<std::int64_t> pick;
    return choose(t, eligible, 0, pick);
  }

  bool choose(Time t, const std::vector<std::int64_t>& eligible,
              std::size_t from, std::vector<std::int64_t>& pick) {
    if (static_cast<std::int32_t>(pick.size()) == m_ ||
        from == eligible.size()) {
      // The subset is complete (capacity reached or no candidates left);
      // smaller subsets are covered by the skip branches.
      for (const auto job : pick) ++done_[static_cast<std::size_t>(job)];
      const bool ok = column(t + 1);
      for (const auto job : pick) --done_[static_cast<std::size_t>(job)];
      return ok;
    }
    // Either include eligible[from] or skip it.
    pick.push_back(eligible[from]);
    const bool with = choose(t, eligible, from + 1, pick);
    pick.pop_back();
    if (with) return true;
    return choose(t, eligible, from + 1, pick);
  }

  const rt::TaskSet& ts_;
  rt::JobTable jobs_;
  std::int32_t m_;
  Time T_ = 0;
  std::vector<Time> done_;
};

struct BruteParam {
  std::uint64_t seed;
  std::int32_t tasks;
  std::int32_t processors;
  Time t_max;
  bool offsets;
};

class BruteForceAgreement : public ::testing::TestWithParam<BruteParam> {};

TEST_P(BruteForceAgreement, OracleAndCsp2MatchExhaustiveEnumeration) {
  const auto param = GetParam();
  gen::GeneratorOptions gopt;
  gopt.tasks = param.tasks;
  gopt.processors = param.processors;
  gopt.t_max = param.t_max;
  gopt.with_offsets = param.offsets;

  int feasible_seen = 0;
  for (std::uint64_t k = 0; k < 25; ++k) {
    const auto inst = gen::generate_indexed(gopt, param.seed, k);
    if (inst.tasks.hyperperiod() > 8) continue;  // keep enumeration tiny
    const rt::Platform platform = rt::Platform::identical(inst.processors);

    BruteForce brute(inst.tasks, inst.processors);
    const bool truth = brute.feasible();
    feasible_seen += truth ? 1 : 0;

    EXPECT_EQ(flow::is_feasible(inst.tasks, platform), truth)
        << "oracle disagrees with enumeration, instance " << k;
    EXPECT_EQ(csp2::solve(inst.tasks, platform).status ==
                  csp2::Status::kFeasible,
              truth)
        << "csp2 disagrees with enumeration, instance " << k;
  }
  // At least some instances of each parameterization must be enumerable.
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Tiny, BruteForceAgreement,
    ::testing::Values(BruteParam{1, 3, 2, 4, false},
                      BruteParam{2, 3, 2, 4, true},
                      BruteParam{3, 4, 2, 3, false},
                      BruteParam{4, 4, 3, 4, true},
                      BruteParam{5, 3, 1, 4, false},
                      BruteParam{6, 4, 1, 3, true}),
    [](const ::testing::TestParamInfo<BruteParam>& info) {
      return "n" + std::to_string(info.param.tasks) + "m" +
             std::to_string(info.param.processors) + "t" +
             std::to_string(info.param.t_max) +
             (info.param.offsets ? "off" : "sync") + "s" +
             std::to_string(info.param.seed);
    });

TEST(BruteForce, KnownCases) {
  // Example-style sanity: one task C=1 D=1 T=1 on m=1 is feasible...
  {
    const auto ts = rt::TaskSet::from_params({{0, 1, 1, 1}});
    BruteForce brute(ts, 1);
    EXPECT_TRUE(brute.feasible());
  }
  // ...two of them are not.
  {
    const auto ts =
        rt::TaskSet::from_params({{0, 1, 1, 1}, {0, 1, 1, 1}});
    BruteForce brute(ts, 1);
    EXPECT_FALSE(brute.feasible());
    BruteForce brute2(ts, 2);
    EXPECT_TRUE(brute2.feasible());
  }
  // Tight-window pair: D=1 twice on one processor.
  {
    const auto ts =
        rt::TaskSet::from_params({{0, 1, 1, 2}, {0, 1, 1, 2}});
    BruteForce brute(ts, 1);
    EXPECT_FALSE(brute.feasible());
  }
}

}  // namespace
}  // namespace mgrts
