// Tests for core::solve_portfolio and the cooperative cancel token: lane
// line-up, first-decisive-wins semantics, loser cancellation, and the
// Method::kPortfolio plumbing through solve_instance / the harness.
#include <gtest/gtest.h>

#include "core/solve.hpp"
#include "exp/harness.hpp"
#include "rt/validate.hpp"
#include "support/deadline.hpp"
#include "testing.hpp"

namespace mgrts::core {
namespace {

using mgrts::testing::example1;
using rt::Platform;

TEST(CancelToken, EmptyTokenNeverCancels) {
  const support::CancelToken token;
  EXPECT_FALSE(token.engaged());
  EXPECT_FALSE(token.cancelled());
  token.cancel();  // no-op on an empty token
  EXPECT_FALSE(token.cancelled());
}

TEST(CancelToken, CopiesShareTheFlagAndDeadlineHonorsIt) {
  const auto token = support::CancelToken::make();
  const support::CancelToken copy = token;
  support::Deadline deadline;  // no wall-clock limit
  deadline.set_cancel(copy);
  EXPECT_FALSE(deadline.expired());
  EXPECT_FALSE(deadline.unlimited()) << "a cancellable deadline can expire";
  token.cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(deadline.expired());
}

TEST(CancelToken, LinkedTokenSeesParentButNotViceVersa) {
  const auto parent = support::CancelToken::make();
  const auto child = support::CancelToken::linked(parent);
  EXPECT_FALSE(child.cancelled());
  child.cancel();  // a race winner cancelling its lanes...
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());  // ...must not leak to the caller
  const auto child2 = support::CancelToken::linked(parent);
  parent.cancel();  // the caller aborting the whole run...
  EXPECT_TRUE(child2.cancelled());  // ...reaches every lane
}

TEST(Portfolio, FeasibleInstanceProducesAValidatedWinner) {
  SolveConfig config;
  config.time_limit_ms = 5'000;
  config.pipeline = PipelineOptions::none();  // exercise the race itself
  const PortfolioReport race =
      solve_portfolio(example1(), Platform::identical(2), config);
  // Four value orders + pruned lane + min-conflicts + one random lane.
  EXPECT_EQ(race.lanes.size(), 7u);
  ASSERT_GE(race.winner, 0);
  EXPECT_EQ(race.report.verdict, Verdict::kFeasible);
  EXPECT_TRUE(race.report.witness_valid);
  ASSERT_TRUE(race.report.schedule.has_value());
  EXPECT_TRUE(rt::is_valid_schedule(example1(), Platform::identical(2),
                                    *race.report.schedule));
  // The winner's recorded outcome matches the headline report, and the
  // provenance names the winning lane.
  EXPECT_EQ(race.lanes[static_cast<std::size_t>(race.winner)].verdict,
            Verdict::kFeasible);
  EXPECT_EQ(race.report.decided_by,
            "portfolio:" +
                race.lanes[static_cast<std::size_t>(race.winner)].label);
}

TEST(Portfolio, InfeasibleInstanceYieldsACompleteProof) {
  // Example 1 needs two processors; on one the race must prove
  // infeasibility (every dedicated lane is complete on identical
  // platforms; the min-conflicts lane's kUnknown give-up is not decisive).
  SolveConfig config;
  config.time_limit_ms = 5'000;
  config.pipeline = PipelineOptions::none();
  config.localsearch.restarts = 1;  // hopeless here; keep the lane short
  config.localsearch.iterations_per_restart = 2'000;
  const PortfolioReport race =
      solve_portfolio(example1(), Platform::identical(1), config);
  ASSERT_GE(race.winner, 0);
  EXPECT_EQ(race.report.verdict, Verdict::kInfeasible);
  EXPECT_TRUE(race.report.complete);
}

TEST(Portfolio, LaneLineUpMatchesConfig) {
  SolveConfig config;
  config.time_limit_ms = 5'000;
  config.pipeline = PipelineOptions::none();
  config.portfolio.random_lanes = 0;
  config.portfolio.pruned_lane = false;
  config.portfolio.local_search_lane = false;
  const PortfolioReport race =
      solve_portfolio(example1(), Platform::identical(2), config);
  EXPECT_EQ(race.lanes.size(), 4u);  // just the §V-C2 value orders
  EXPECT_GE(race.winner, 0);

  config.portfolio.pruned_lane = true;
  config.portfolio.local_search_lane = true;
  const PortfolioReport diverse =
      solve_portfolio(example1(), Platform::identical(2), config);
  ASSERT_EQ(diverse.lanes.size(), 6u);
  EXPECT_EQ(diverse.lanes[4].label, "CSP2+(D-C)+prunes");
  EXPECT_EQ(diverse.lanes[5].label, "min-conflicts");
}

TEST(Portfolio, PresolveDecidesBeforeAnyLaneLaunches) {
  // Default pipeline: the flow oracle settles Example 1 in the prefilter,
  // so the race never starts (no lanes, winner == -1) and the provenance
  // names the stage.
  SolveConfig config;
  config.time_limit_ms = 5'000;
  const PortfolioReport race =
      solve_portfolio(example1(), Platform::identical(2), config);
  EXPECT_TRUE(race.lanes.empty());
  EXPECT_EQ(race.winner, -1);
  EXPECT_EQ(race.report.verdict, Verdict::kFeasible);
  EXPECT_EQ(race.report.decided_by, "flow-oracle");
  EXPECT_TRUE(race.report.witness_valid);
  ASSERT_FALSE(race.presolve.empty());
  EXPECT_EQ(race.presolve.back().stage, "flow-oracle");
}

TEST(Portfolio, ReachableAsAMethodThroughSolveInstance) {
  SolveConfig config;
  config.method = Method::kPortfolio;
  config.time_limit_ms = 5'000;
  config.pipeline = PipelineOptions::none();
  const SolveReport report =
      solve_instance(example1(), Platform::identical(2), config);
  EXPECT_EQ(report.verdict, Verdict::kFeasible);
  EXPECT_TRUE(report.witness_valid);
  EXPECT_NE(report.detail.find("portfolio winner"), std::string::npos)
      << "detail: " << report.detail;

  // With the default pipeline the presolve stages answer instead, and the
  // provenance says so.
  SolveConfig piped;
  piped.method = Method::kPortfolio;
  piped.time_limit_ms = 5'000;
  const SolveReport presolved =
      solve_instance(example1(), Platform::identical(2), piped);
  EXPECT_EQ(presolved.verdict, Verdict::kFeasible);
  EXPECT_EQ(presolved.decided_by, "flow-oracle");
}

TEST(Portfolio, BatchableThroughTheHarnessSpec) {
  exp::BatchOptions options;
  options.generator.tasks = 4;
  options.generator.processors = 2;
  options.generator.rule = gen::ProcessorRule::kFixed;
  options.generator.t_max = 4;
  options.instances = 3;
  options.seed = 7;
  options.workers = 1;
  const exp::BatchResult batch =
      exp::run_batch(options, {exp::portfolio_spec(/*time_limit_ms=*/5'000)});
  ASSERT_EQ(batch.labels.size(), 1u);
  EXPECT_EQ(batch.labels[0], "CSP2-pipeline");
  for (const auto& inst : batch.instances) {
    ASSERT_EQ(inst.runs.size(), 1u);
    // Generous budget on tiny instances: every race must decide, and
    // feasible verdicts must carry validated witnesses.  With the full
    // pipeline in front, these identical-platform instances are settled by
    // a presolve stage before any lane launches.
    EXPECT_TRUE(inst.runs[0].verdict == Verdict::kFeasible ||
                inst.runs[0].verdict == Verdict::kInfeasible);
    if (inst.runs[0].verdict == Verdict::kFeasible) {
      // Witness-backed unless the analysis density test proved existence
      // analytically (the one stage that decides without constructing).
      EXPECT_TRUE(inst.runs[0].witness_ok ||
                  inst.runs[0].decided_by.rfind("analysis:", 0) == 0)
          << inst.runs[0].decided_by;
    }
    EXPECT_TRUE(inst.runs[0].decided_by_presolve())
        << inst.runs[0].decided_by;
  }
}

}  // namespace
}  // namespace mgrts::core
