// Hostile-input corpus for core::instance_io (the daemon's parse surface).
//
// Contract under test: read_instance_string throws ParseError (malformed
// text) or ValidationError (well-formed text describing an invalid system)
// — and NOTHING else.  No std::bad_alloc from a corrupt count, no silent
// truncation of float-ish tokens, no istream quirk accepted as data.  Each
// corpus entry pins the diagnostic substring so error messages stay
// line-referenced and actionable.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/instance_io.hpp"
#include "support/error.hpp"

namespace mgrts {
namespace {

struct BadCase {
  const char* label;
  std::string text;
  const char* diagnostic;  // substring the error message must carry
};

std::string valid_header(const std::string& tasks_line) {
  return tasks_line + "\n0 1 2 2\nprocessors 1\n";
}

// ------------------------------------------------------------- ParseError

const std::vector<BadCase>& parse_corpus() {
  static const std::vector<BadCase> corpus = {
      {"empty", "", "empty instance"},
      {"comments-only", "# nothing\n\n   \n# here\n", "empty instance"},
      {"missing-tasks-keyword", "processors 2\n", "expected 'tasks <value>'"},
      {"tasks-word-count", "tasks two\n", "not a plain integer"},
      {"tasks-float", valid_header("tasks 1.0"), "not a plain integer"},
      {"tasks-trailing", "tasks 1 junk\n0 1 2 2\nprocessors 1\n",
       "expected 'tasks <value>'"},
      {"tasks-zero", "tasks 0\nprocessors 1\n", "task count must be in"},
      {"tasks-negative", "tasks -3\n", "task count must be in"},
      {"tasks-absurd", "tasks 99999999\n", "task count must be in"},
      {"tasks-overflow", "tasks 99999999999999999999\n",
       "does not fit a 64-bit integer"},
      {"missing-task-line", "tasks 2\n0 1 2 2\n", "missing task line"},
      {"task-too-few-fields", "tasks 1\n0 1 2\nprocessors 1\n",
       "expected 'O C D T'"},
      {"task-trailing-token", "tasks 1\n0 1 2 2 9\nprocessors 1\n",
       "expected 'O C D T'"},
      {"task-float-wcet", "tasks 1\n0 1.5 2 2\nprocessors 1\n",
       "not a plain integer"},
      {"task-nan", "tasks 1\n0 nan 2 2\nprocessors 1\n", "not a plain integer"},
      {"task-inf", "tasks 1\n0 inf 2 2\nprocessors 1\n", "not a plain integer"},
      {"task-hex", "tasks 1\n0 0x10 2 2\nprocessors 1\n",
       "not a plain integer"},
      {"task-overflow", "tasks 1\n0 1 2 99999999999999999999\nprocessors 1\n",
       "does not fit a 64-bit integer"},
      {"task-magnitude", "tasks 1\n0 1 2 9999999999999999\nprocessors 1\n",
       "magnitude cap"},
      {"missing-processors", "tasks 1\n0 1 2 2\n", "missing 'processors'"},
      {"processors-zero", "tasks 1\n0 1 2 2\nprocessors 0\n",
       "processor count must be in"},
      {"processors-negative", "tasks 1\n0 1 2 2\nprocessors -1\n",
       "processor count must be in"},
      {"processors-absurd", "tasks 1\n0 1 2 2\nprocessors 2000000\n",
       "processor count must be in"},
      {"unknown-directive", "tasks 1\n0 1 2 2\nprocessors 1\nbogus 3\n",
       "unknown directive"},
      {"deadline-model-unknown",
       "tasks 1\n0 1 2 2\nprocessors 1\ndeadline-model sometimes\n",
       "unknown deadline-model"},
      {"deadline-model-trailing",
       "tasks 1\n0 1 2 2\nprocessors 1\ndeadline-model constrained x\n",
       "expected 'deadline-model <value>'"},
      {"rates-takes-no-arg",
       "tasks 1\n0 1 2 2\nprocessors 1\nrates 3\n1\n", "takes no argument"},
      {"rates-missing-row", "tasks 2\n0 1 2 2\n0 1 2 2\nprocessors 1\nrates\n1\n",
       "missing rate row"},
      {"rates-short-row",
       "tasks 1\n0 1 2 2\nprocessors 2\nrates\n1\n", "expected 2 rates"},
      {"rates-long-row",
       "tasks 1\n0 1 2 2\nprocessors 2\nrates\n1 2 3\n", "expected 2 rates"},
      {"rates-negative",
       "tasks 1\n0 1 2 2\nprocessors 1\nrates\n-1\n", "out of range"},
      {"rates-float",
       "tasks 1\n0 1 2 2\nprocessors 1\nrates\n1.5\n", "not a plain integer"},
      {"rates-overflow-rate",
       "tasks 1\n0 1 2 2\nprocessors 1\nrates\n4000000000\n", "out of range"},
      {"rates-duplicate",
       "tasks 1\n0 1 2 2\nprocessors 1\nrates\n1\nrates\n1\n",
       "duplicate 'rates'"},
  };
  return corpus;
}

TEST(InstanceIoHostile, ParseCorpusThrowsParseErrorWithDiagnostic) {
  for (const BadCase& bad : parse_corpus()) {
    SCOPED_TRACE(bad.label);
    try {
      (void)core::read_instance_string(bad.text);
      FAIL() << bad.label << ": accepted malformed input";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(bad.diagnostic), std::string::npos)
          << "diagnostic was: " << e.what();
      // Line-referenced, so a user can find the offending line.
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
    } catch (const std::exception& e) {
      FAIL() << bad.label << ": wrong exception type: " << e.what();
    }
  }
}

// -------------------------------------------------------- ValidationError

const std::vector<BadCase>& validation_corpus() {
  static const std::vector<BadCase> corpus = {
      {"wcet-zero", "tasks 1\n0 0 2 4\nprocessors 1\n", "WCET"},
      {"wcet-negative", "tasks 1\n0 -2 2 4\nprocessors 1\n", "WCET"},
      {"period-zero", "tasks 1\n0 1 2 0\nprocessors 1\n", "period"},
      {"deadline-negative", "tasks 1\n0 1 -5 4\nprocessors 1\n", "deadline"},
      {"offset-negative", "tasks 1\n-1 1 2 4\nprocessors 1\n", "offset"},
      {"offset-beyond-period", "tasks 1\n5 1 2 4\nprocessors 1\n", "offset"},
      {"constrained-d-gt-t", "tasks 1\n0 1 9 4\nprocessors 1\n",
       "constrained-deadline"},
  };
  return corpus;
}

TEST(InstanceIoHostile, ValidationCorpusThrowsValidationError) {
  for (const BadCase& bad : validation_corpus()) {
    SCOPED_TRACE(bad.label);
    try {
      (void)core::read_instance_string(bad.text);
      FAIL() << bad.label << ": accepted invalid system";
    } catch (const ValidationError& e) {
      EXPECT_NE(std::string(e.what()).find(bad.diagnostic), std::string::npos)
          << "diagnostic was: " << e.what();
    } catch (const std::exception& e) {
      FAIL() << bad.label << ": wrong exception type: " << e.what();
    }
  }
}

// Nothing but ParseError/ValidationError escapes, whatever the bytes.
TEST(InstanceIoHostile, ArbitraryGarbageNeverEscapesTheContract) {
  const std::string garbage_cases[] = {
      std::string(1000, '\0'),
      "tasks 1\n\x01\x02\x03\x04\nprocessors 1\n",
      "\xff\xfe tasks 1",
      "tasks\n",
      "rates\nrates\nrates\n",
      std::string("tasks 1\n0 1 2 2\nprocessors 1\n") + std::string(64, '#'),
  };
  for (const std::string& text : garbage_cases) {
    try {
      (void)core::read_instance_string(text);
      // Accepting is fine only if the tail case (valid + comment) parsed.
    } catch (const ParseError&) {
    } catch (const ValidationError&) {
    } catch (const std::exception& e) {
      FAIL() << "contract breach: " << e.what();
    }
  }
}

// A hostile count must not buy an allocation: huge 'tasks' headers with no
// body fail fast by range check, not by reserve().
TEST(InstanceIoHostile, CorruptCountsCostNothing) {
  EXPECT_THROW((void)core::read_instance_string("tasks 1000000000\n"),
               ParseError);
  EXPECT_THROW((void)core::read_instance_string(
                   "tasks 100\n" /* no task lines */),
               ParseError);
  // n*m cap on the rates block: 100k tasks x 100k processors would be 1e10
  // entries; rejected before any row is read.
  std::string big = "tasks 2\n0 1 2 2\n0 1 2 2\nprocessors 100000\nrates\n";
  // 2 x 100000 = 200k entries is fine; push beyond the cap via tasks.
  EXPECT_THROW((void)core::read_instance_string(big), ParseError);  // rows missing
}

// ------------------------------------------------------------ round trips

TEST(InstanceIoRoundTrip, IdenticalPlatform) {
  const std::string text =
      "tasks 3\n0 1 2 2\n1 3 4 4\n0 2 2 3\nprocessors 2\n";
  const core::InstanceFile parsed = core::read_instance_string(text);
  const std::string written =
      core::write_instance_string(parsed.tasks, parsed.platform);
  const core::InstanceFile reparsed = core::read_instance_string(written);
  EXPECT_EQ(reparsed.tasks.size(), 3);
  EXPECT_EQ(reparsed.platform.processors(), 2);
  EXPECT_TRUE(reparsed.platform.is_identical());
  for (rt::TaskId i = 0; i < 3; ++i) {
    EXPECT_EQ(reparsed.tasks[i].params.wcet, parsed.tasks[i].params.wcet);
    EXPECT_EQ(reparsed.tasks[i].params.period, parsed.tasks[i].params.period);
  }
}

TEST(InstanceIoRoundTrip, HeterogeneousRatesAndArbitraryDeadlines) {
  const std::string text =
      "tasks 2\n0 1 5 4\n0 2 2 3\nprocessors 2\n"
      "deadline-model arbitrary\nrates\n1 0\n1 2\n";
  const core::InstanceFile parsed = core::read_instance_string(text);
  EXPECT_FALSE(parsed.tasks.is_constrained());
  EXPECT_FALSE(parsed.platform.is_identical());
  const std::string written =
      core::write_instance_string(parsed.tasks, parsed.platform);
  const core::InstanceFile reparsed = core::read_instance_string(written);
  EXPECT_EQ(reparsed.platform.rate(0, 1), 0);
  EXPECT_EQ(reparsed.platform.rate(1, 1), 2);
  EXPECT_FALSE(reparsed.tasks.is_constrained());
}

}  // namespace
}  // namespace mgrts
