#include "flow/oracle.hpp"

#include <gtest/gtest.h>

#include "flow/dinic.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::flow {
namespace {

using mgrts::testing::example1;
using rt::Platform;
using rt::TaskSet;

// ------------------------------------------------------------------ Dinic

TEST(Dinic, SingleEdge) {
  Dinic net(2);
  const auto e = net.add_edge(0, 1, 5);
  EXPECT_EQ(net.max_flow(0, 1), 5);
  EXPECT_EQ(net.flow_on(e), 5);
}

TEST(Dinic, SeriesBottleneck) {
  Dinic net(3);
  net.add_edge(0, 1, 7);
  net.add_edge(1, 2, 3);
  EXPECT_EQ(net.max_flow(0, 2), 3);
}

TEST(Dinic, ParallelPathsAdd) {
  Dinic net(4);
  net.add_edge(0, 1, 2);
  net.add_edge(1, 3, 2);
  net.add_edge(0, 2, 3);
  net.add_edge(2, 3, 3);
  EXPECT_EQ(net.max_flow(0, 3), 5);
}

TEST(Dinic, ClassicAugmentingCase) {
  // Diamond with a cross edge: max flow needs the residual network.
  Dinic net(4);
  net.add_edge(0, 1, 1);
  net.add_edge(0, 2, 1);
  net.add_edge(1, 2, 1);
  net.add_edge(1, 3, 1);
  net.add_edge(2, 3, 1);
  EXPECT_EQ(net.max_flow(0, 3), 2);
}

TEST(Dinic, DisconnectedSinkYieldsZero) {
  Dinic net(3);
  net.add_edge(0, 1, 4);
  EXPECT_EQ(net.max_flow(0, 2), 0);
}

TEST(Dinic, ZeroCapacityEdge) {
  Dinic net(2);
  net.add_edge(0, 1, 0);
  EXPECT_EQ(net.max_flow(0, 1), 0);
}

// ----------------------------------------------------------------- oracle

TEST(Oracle, Example1IsFeasibleWithValidWitness) {
  const TaskSet ts = example1();
  const Platform p = Platform::identical(2);
  const OracleResult result = decide_feasibility(ts, p);
  EXPECT_EQ(result.verdict, OracleVerdict::kFeasible);
  EXPECT_EQ(result.flow, result.demand);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
}

TEST(Oracle, Example1InfeasibleOnOneProcessor) {
  // U = 23/12 > 1.
  const OracleResult result =
      decide_feasibility(example1(), Platform::identical(1));
  EXPECT_EQ(result.verdict, OracleVerdict::kInfeasible);
  EXPECT_LT(result.flow, result.demand);
}

TEST(Oracle, OverCapacityInfeasible) {
  EXPECT_FALSE(is_feasible(mgrts::testing::overloaded1(),
                           Platform::identical(1)));
}

TEST(Oracle, TightWindowInfeasibleDespiteLowUtilization) {
  // Two tasks needing the very same single slot each period on one core:
  // D = 1 forces both into slot 0 -> infeasible on m = 1 although U = 1.
  const TaskSet ts = TaskSet::from_params({{0, 1, 1, 2}, {0, 1, 1, 2}});
  EXPECT_FALSE(is_feasible(ts, Platform::identical(1)));
  EXPECT_TRUE(is_feasible(ts, Platform::identical(2)));
}

TEST(Oracle, FullUtilizationBoundaryFeasible) {
  // U = m exactly, schedulable: two saturating tasks on two cores.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}, {0, 2, 2, 2}});
  EXPECT_TRUE(is_feasible(ts, Platform::identical(2)));
}

TEST(Oracle, IntraTaskParallelismForbidden) {
  // One task with C = D = 2, T = 2 per period is fine on one core, but a
  // task with C=2, D=1 can never fit (needs 2 units in one slot, C3 forbids
  // splitting across processors): C > D is rejected at TaskSet level, so
  // model it via two tight tasks instead; the oracle must respect the
  // job->slot capacity of 1.
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 4}});
  // On 4 processors the job still needs 2 distinct slots; window has exactly
  // 2 slots, so it is feasible — but only because C3 allows one unit/slot.
  const OracleResult result = decide_feasibility(ts, Platform::identical(4));
  EXPECT_EQ(result.verdict, OracleVerdict::kFeasible);
  ASSERT_TRUE(result.schedule.has_value());
  // Witness must not run tau1 twice in one slot.
  EXPECT_TRUE(rt::is_valid_schedule(ts, Platform::identical(4),
                                    *result.schedule));
}

TEST(Oracle, WitnessIsCanonicalAscending) {
  const OracleResult result =
      decide_feasibility(example1(), Platform::identical(2));
  ASSERT_TRUE(result.schedule.has_value());
  const rt::Schedule& s = *result.schedule;
  for (rt::Time t = 0; t < s.hyperperiod(); ++t) {
    // Non-idle entries ascend and idles trail.
    rt::TaskId prev = -1;
    bool seen_idle = false;
    for (rt::ProcId j = 0; j < s.processors(); ++j) {
      const rt::TaskId v = s.at(t, j);
      if (v == rt::kIdle) {
        seen_idle = true;
        continue;
      }
      EXPECT_FALSE(seen_idle) << "task after idle at t=" << t;
      EXPECT_GT(v, prev) << "non-ascending at t=" << t;
      prev = v;
    }
  }
}

TEST(Oracle, RejectsHeterogeneousPlatform) {
  EXPECT_THROW(
      static_cast<void>(decide_feasibility(
          example1(), Platform::heterogeneous({{1, 1}, {1, 1}, {1, 1}}))),
      mgrts::ValidationError);
}

TEST(Oracle, RejectsArbitraryDeadlines) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, rt::DeadlineModel::kArbitrary);
  EXPECT_THROW(static_cast<void>(decide_feasibility(ts, Platform::identical(1))),
               mgrts::ValidationError);
}

TEST(Oracle, CloneExpansionDecidesArbitraryDeadlines) {
  // An arbitrary-deadline system solved through §VI-B clones: tau with
  // D = 2T can pipeline two instances in parallel.
  const TaskSet ts = TaskSet::from_params({{0, 3, 4, 2}, {0, 1, 2, 2}},
                                          rt::DeadlineModel::kArbitrary);
  const TaskSet clones = ts.to_constrained();
  const Platform p = Platform::identical(2);
  const OracleResult result = decide_feasibility(clones, p);
  EXPECT_EQ(result.verdict, OracleVerdict::kFeasible);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_TRUE(rt::is_valid_schedule(clones, p, *result.schedule));
}

TEST(Oracle, RandomWitnessesAlwaysValidate) {
  int feasible = 0;
  for (std::uint64_t k = 0; k < 60; ++k) {
    gen::GeneratorOptions options;
    options.tasks = 5;
    options.processors = 3;
    options.t_max = 6;
    options.with_offsets = (k % 3 == 0);
    const auto inst = gen::generate_indexed(options, 4242, k);
    const Platform p = Platform::identical(inst.processors);
    const OracleResult result = decide_feasibility(inst.tasks, p);
    if (result.verdict == OracleVerdict::kFeasible) {
      ++feasible;
      ASSERT_TRUE(result.schedule.has_value());
      EXPECT_TRUE(rt::is_valid_schedule(inst.tasks, p, *result.schedule))
          << "instance " << k;
    }
  }
  EXPECT_GT(feasible, 10);
}

TEST(Oracle, CapacityFilterAgreesWithVerdictDirection) {
  // r > 1 is a *necessary* condition: whenever it triggers, the oracle must
  // say infeasible (never the other way around).
  for (std::uint64_t k = 0; k < 80; ++k) {
    gen::GeneratorOptions options;
    options.tasks = 4;
    options.processors = 2;
    options.t_max = 5;
    const auto inst = gen::generate_indexed(options, 99, k);
    if (inst.tasks.exceeds_capacity(inst.processors)) {
      EXPECT_FALSE(
          is_feasible(inst.tasks, Platform::identical(inst.processors)))
          << "instance " << k;
    }
  }
}

}  // namespace
}  // namespace mgrts::flow
