// Serving layer (DESIGN.md §13): wire protocol, canonical cache keys, the
// verdict cache, the in-process Service funnel, and the socket daemon
// end to end.  The contract under test everywhere: a request that reaches
// the serving layer ALWAYS gets a tagged response carrying the canonical
// Verdict/FailureCause vocabulary, and a cached answer is indistinguishable
// from a fresh one except for its "cache:" provenance prefix.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/canonical.hpp"
#include "core/instance_io.hpp"
#include "core/solve.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/deadline.hpp"
#include "support/socket.hpp"
#include "testing.hpp"

namespace mgrts::serve {
namespace {

// ------------------------------------------------------------------ wire

TEST(Wire, FormatParseRoundTrip) {
  Message msg;
  msg.kind = "solve";
  msg.set("timeout-ms", std::int64_t{250});
  msg.set("id", "req-1");
  msg.body = "tasks 1\n0 1 2 2\nprocessors 1\n";

  const Message parsed = parse_message(format_message(msg));
  EXPECT_EQ(parsed.kind, "solve");
  EXPECT_EQ(parsed.get("id"), "req-1");
  EXPECT_EQ(parsed.get_int("timeout-ms"), 250);
  EXPECT_EQ(parsed.body, msg.body);
}

TEST(Wire, EmptyHeadersAndBodyRoundTrip) {
  Message msg;
  msg.kind = "ping";
  const Message parsed = parse_message(format_message(msg));
  EXPECT_EQ(parsed.kind, "ping");
  EXPECT_TRUE(parsed.headers.empty());
  EXPECT_TRUE(parsed.body.empty());
}

TEST(Wire, RejectsForeignTag) {
  EXPECT_THROW((void)parse_message("mgrts/2 solve\n\n"), ProtocolError);
  EXPECT_THROW((void)parse_message("GET / HTTP/1.1\r\n\r\n"), ProtocolError);
  EXPECT_THROW((void)parse_message(""), ProtocolError);
}

TEST(Wire, RejectsMissingKindOrHeaderShape) {
  EXPECT_THROW((void)parse_message("mgrts/1\n\n"), ProtocolError);
  EXPECT_THROW((void)parse_message("mgrts/1 solve\nno-separator"),
               ProtocolError);
}

TEST(Wire, GetIntRejectsNonNumericHeader) {
  Message msg;
  msg.kind = "solve";
  msg.set("timeout-ms", "soon");
  EXPECT_THROW((void)msg.get_int("timeout-ms"), ProtocolError);
  EXPECT_EQ(msg.get_int("absent"), std::nullopt);
}

// --------------------------------------------- wire: hostile short frames
//
// A frame header may declare more payload than the peer ever delivers —
// by malice, by a crashed sender, or by a version-skewed encoder.  The
// contract (wire.hpp): a truncated frame is a ProtocolError, promptly;
// recv_frame never parks forever on a declared-but-absent body.

namespace {

/// A connected AF_UNIX socketpair; `ours` is the attacker end the test
/// writes raw bytes to, `theirs` is the end recv_frame reads from.
struct WirePair {
  support::Fd ours;
  support::Fd theirs;
  WirePair() {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      throw support::SocketError("socketpair failed");
    }
    ours = support::Fd(fds[0]);
    theirs = support::Fd(fds[1]);
  }
  /// Writes a big-endian length prefix declaring `declared` payload bytes.
  void write_prefix(std::uint32_t declared) {
    const unsigned char prefix[4] = {
        static_cast<unsigned char>((declared >> 24) & 0xff),
        static_cast<unsigned char>((declared >> 16) & 0xff),
        static_cast<unsigned char>((declared >> 8) & 0xff),
        static_cast<unsigned char>(declared & 0xff)};
    support::write_all(ours, prefix, 4);
  }
};

}  // namespace

TEST(Wire, TruncatedFrameNoBodyAtAllIsProtocolError) {
  WirePair pair;
  pair.write_prefix(64);  // declare 64 bytes, deliver zero, hang up
  pair.ours.close();
  std::string payload;
  EXPECT_THROW((void)recv_frame(pair.theirs, payload, 5'000), ProtocolError);
}

TEST(Wire, TruncatedFramePartialBodyIsProtocolError) {
  WirePair pair;
  pair.write_prefix(64);
  support::write_all(pair.ours, "mgrts/1 ping\n", 13);  // 13 of 64, then EOF
  pair.ours.close();
  std::string payload;
  EXPECT_THROW((void)recv_frame(pair.theirs, payload, 5'000), ProtocolError);
}

TEST(Wire, SilentPeerAfterPrefixTimesOutAsProtocolError) {
  // The peer declares a body and then goes silent without closing.  The
  // caller's timeout bounds the body read (capped by kIntraFrameTimeoutMs),
  // so this surfaces promptly instead of blocking the handler forever.
  WirePair pair;
  pair.write_prefix(64);
  std::string payload;
  support::Stopwatch watch;
  EXPECT_THROW((void)recv_frame(pair.theirs, payload, 200), ProtocolError);
  EXPECT_LT(watch.seconds(), 5.0);
}

TEST(Wire, EveryPrefixOfARealFrameTruncatesCleanly) {
  // Cut a genuine formatted frame at every interesting boundary: inside
  // the prefix region is a frame-size truth test already (prefix short
  // reads return false as clean EOF); here we cut inside the declared
  // body at several offsets, including just-one-byte-short.
  Message msg;
  msg.kind = "solve";
  msg.set("id", "req-cut");
  msg.body = "tasks 1\n0 1 2 2\nprocessors 1\n";
  const std::string wire = format_message(msg);

  for (const std::size_t keep :
       {std::size_t{1}, wire.size() / 2, wire.size() - 1}) {
    WirePair pair;
    pair.write_prefix(static_cast<std::uint32_t>(wire.size()));
    support::write_all(pair.ours, wire.data(), keep);
    pair.ours.close();
    std::string payload;
    EXPECT_THROW((void)recv_frame(pair.theirs, payload, 5'000), ProtocolError)
        << "cut at " << keep << "/" << wire.size();
  }
}

TEST(Wire, TruncatedPrefixIsCleanEofNotAnError) {
  // A peer that closes between messages — even mid-prefix with zero bytes
  // sent — is the normal end-of-stream, not an attack.
  WirePair pair;
  pair.ours.close();
  std::string payload;
  EXPECT_FALSE(recv_frame(pair.theirs, payload, 5'000));
}

TEST(Wire, ZeroLengthAndValidFramesStillFlow) {
  // The hardening must not break the good path: an empty frame and a real
  // frame back to back, over the same pair.
  WirePair pair;
  pair.write_prefix(0);
  Message msg;
  msg.kind = "ping";
  send_frame(pair.ours, format_message(msg));
  std::string payload;
  ASSERT_TRUE(recv_frame(pair.theirs, payload, 5'000));
  EXPECT_TRUE(payload.empty());
  ASSERT_TRUE(recv_frame(pair.theirs, payload, 5'000));
  EXPECT_EQ(parse_message(payload).kind, "ping");
}

TEST(Wire, VerdictAndCauseStringsRoundTrip) {
  for (const core::Verdict v :
       {core::Verdict::kFeasible, core::Verdict::kInfeasible,
        core::Verdict::kTimeout, core::Verdict::kNodeLimit,
        core::Verdict::kMemoryLimit, core::Verdict::kUnknown}) {
    EXPECT_EQ(verdict_from_string(core::to_string(v)), v);
  }
  for (const core::FailureCause c :
       {core::FailureCause::kNone, core::FailureCause::kDeadline,
        core::FailureCause::kCancelled, core::FailureCause::kMemory,
        core::FailureCause::kNodeBudget, core::FailureCause::kInternalError,
        core::FailureCause::kFaultInjected}) {
    EXPECT_EQ(cause_from_string(core::to_string(c)), c);
  }
  EXPECT_EQ(verdict_from_string("maybe"), std::nullopt);
  EXPECT_EQ(cause_from_string("gremlins"), std::nullopt);
}

// -------------------------------------------------------- canonical keys

rt::TaskSet permuted(const rt::TaskSet& ts) {
  std::vector<rt::TaskParams> params;
  for (rt::TaskId i = 0; i < ts.size(); ++i) {
    params.push_back({ts[i].offset(), ts[i].wcet(), ts[i].deadline(),
                      ts[i].period()});
  }
  std::rotate(params.begin(), params.begin() + 1, params.end());
  return rt::TaskSet::from_params(params, ts.model());
}

TEST(CanonicalKey, PermutationInvariant) {
  const rt::TaskSet ts = testing::example1();
  const rt::Platform platform = testing::example1_platform();
  EXPECT_EQ(core::canonical_key(ts, platform),
            core::canonical_key(permuted(ts), platform));
  EXPECT_EQ(core::canonical_key(ts, platform),
            core::canonical_key(permuted(permuted(ts)), platform));
}

TEST(CanonicalKey, ScalingInvariantOnIdenticalPlatforms) {
  // Every parameter times 3 is the same schedulability instance on an
  // identical platform (the max-flow condition scales linearly).
  const rt::TaskSet base = testing::example1();
  std::vector<rt::TaskParams> scaled;
  for (rt::TaskId i = 0; i < base.size(); ++i) {
    scaled.push_back({base[i].offset() * 3, base[i].wcet() * 3,
                      base[i].deadline() * 3, base[i].period() * 3});
  }
  const rt::TaskSet ts3 = rt::TaskSet::from_params(scaled, base.model());
  const rt::Platform platform = testing::example1_platform();
  EXPECT_EQ(core::canonical_key(base, platform),
            core::canonical_key(ts3, platform));

  // ... and scaling can be opted out of.
  core::CanonicalOptions no_scale;
  no_scale.scaling = false;
  EXPECT_NE(core::canonical_key(base, platform, no_scale),
            core::canonical_key(ts3, platform, no_scale));
}

TEST(CanonicalKey, ScalingNotAppliedOffIdenticalPlatforms) {
  // No exactness theorem off identical platforms, so the scaled pair must
  // NOT collide even with scaling enabled.
  const rt::TaskSet base =
      rt::TaskSet::from_params({{0, 2, 4, 4}, {0, 2, 4, 4}});
  const rt::TaskSet ts2 =
      rt::TaskSet::from_params({{0, 4, 8, 8}, {0, 4, 8, 8}});
  const rt::Platform uniform = rt::Platform::uniform({2, 1});
  EXPECT_NE(core::canonical_key(base, uniform),
            core::canonical_key(ts2, uniform));
}

TEST(CanonicalKey, UniformSpeedOrderIsCanonical) {
  const rt::TaskSet ts = testing::light3();
  EXPECT_EQ(core::canonical_key(ts, rt::Platform::uniform({1, 3, 2})),
            core::canonical_key(ts, rt::Platform::uniform({3, 2, 1})));
  EXPECT_NE(core::canonical_key(ts, rt::Platform::uniform({3, 2, 1})),
            core::canonical_key(ts, rt::Platform::uniform({3, 2, 2})));
}

TEST(CanonicalKey, HeterogeneousRateRowsTravelWithTheirTasks) {
  // Permuting tasks *with* their rate rows is the same instance; permuting
  // tasks while leaving the rate matrix behind is a different one.
  const rt::TaskSet ts =
      rt::TaskSet::from_params({{0, 1, 2, 2}, {0, 2, 3, 3}});
  const rt::TaskSet swapped =
      rt::TaskSet::from_params({{0, 2, 3, 3}, {0, 1, 2, 2}});
  const rt::Platform rates = rt::Platform::heterogeneous({{1, 2}, {2, 0}});
  const rt::Platform rates_swapped =
      rt::Platform::heterogeneous({{2, 0}, {1, 2}});
  EXPECT_EQ(core::canonical_key(ts, rates),
            core::canonical_key(swapped, rates_swapped));
  EXPECT_NE(core::canonical_key(ts, rates),
            core::canonical_key(swapped, rates));
}

TEST(CanonicalKey, DistinctInstancesStayDistinct) {
  const rt::Platform m2 = rt::Platform::identical(2);
  EXPECT_NE(core::canonical_key(testing::example1(), m2),
            core::canonical_key(testing::light3(), m2));
  EXPECT_NE(core::canonical_key(testing::example1(), m2),
            core::canonical_key(testing::example1(), rt::Platform::identical(3)));
}

// ---------------------------------------------------------- verdict cache

TEST(VerdictCache, MissThenHitWithProvenance) {
  VerdictCache cache;
  EXPECT_EQ(cache.lookup("k1"), std::nullopt);
  cache.insert("k1", core::Verdict::kFeasible, true, "flow-oracle");

  const auto hit = cache.lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->verdict, core::Verdict::kFeasible);
  EXPECT_TRUE(hit->complete);
  EXPECT_EQ(hit->decided_by, "flow-oracle");
  EXPECT_EQ(hit->hits, 0);  // hits before this lookup

  const auto again = cache.lookup("k1");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->hits, 1);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
}

TEST(VerdictCache, RejectsNonDecisiveVerdicts) {
  // Budget outcomes are a function of the budget, not the instance; caching
  // one would poison every duplicate after a starved request.
  VerdictCache cache;
  cache.insert("t", core::Verdict::kTimeout, false, "backend:CSP2(dedicated)");
  cache.insert("n", core::Verdict::kNodeLimit, false, "x");
  cache.insert("m", core::Verdict::kMemoryLimit, false, "x");
  cache.insert("u", core::Verdict::kUnknown, false, "x");
  // Incomplete infeasible = "ran out of budget while unsat so far", not a
  // proof — must be rejected too.
  cache.insert("i", core::Verdict::kInfeasible, false, "x");

  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().rejected, 5);

  // Complete infeasible IS a proof.
  cache.insert("proof", core::Verdict::kInfeasible, true, "analysis");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerdictCache, FirstWriterWinsKeepsProvenanceStable) {
  VerdictCache cache;
  cache.insert("k", core::Verdict::kFeasible, true, "flow-oracle");
  cache.insert("k", core::Verdict::kFeasible, true, "backend:CSP2(dedicated)");
  const auto hit = cache.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->decided_by, "flow-oracle");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerdictCache, LruEvictionRefreshedByHits) {
  CacheOptions options;
  options.capacity = 2;
  VerdictCache cache(options);
  cache.insert("a", core::Verdict::kFeasible, true, "x");
  cache.insert("b", core::Verdict::kFeasible, true, "x");
  (void)cache.lookup("a");  // refresh "a"; "b" is now least-recently used
  cache.insert("c", core::Verdict::kFeasible, true, "x");

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(VerdictCache, CapacityZeroDisablesCaching) {
  CacheOptions options;
  options.capacity = 0;
  VerdictCache cache(options);
  cache.insert("k", core::Verdict::kFeasible, true, "x");
  EXPECT_EQ(cache.lookup("k"), std::nullopt);
  EXPECT_EQ(cache.size(), 0u);
}

// --------------------------------------------------------------- service

Message solve_request(const std::string& body) {
  Message request;
  request.kind = "solve";
  request.body = body;
  return request;
}

TEST(Service, SolvesAndTagsAFeasibleInstance) {
  Service service;
  const Message response = service.handle_message(solve_request(
      core::write_instance_string(testing::example1(),
                                  testing::example1_platform())));
  EXPECT_EQ(response.kind, "ok");
  EXPECT_EQ(response.get("verdict"), "feasible");
  EXPECT_EQ(response.get("complete"), "1");
  EXPECT_EQ(response.get("cause"), "none");
  EXPECT_EQ(response.get("decided-by"), "flow-oracle");
  EXPECT_EQ(response.get("cache"), "miss");
}

TEST(Service, PermutedAndScaledDuplicatesHitTheCache) {
  Service service;
  const rt::TaskSet base = testing::example1();
  const rt::Platform platform = testing::example1_platform();

  const Message first = service.handle_message(
      solve_request(core::write_instance_string(base, platform)));
  EXPECT_EQ(first.get("cache"), "miss");

  const Message second = service.handle_message(
      solve_request(core::write_instance_string(permuted(base), platform)));
  EXPECT_EQ(second.get("cache"), "hit");
  EXPECT_EQ(second.get("verdict"), first.get("verdict"));
  EXPECT_EQ(second.get("decided-by"), "cache:flow-oracle");
  EXPECT_EQ(second.get("cause"), "none");

  std::vector<rt::TaskParams> scaled;
  for (rt::TaskId i = 0; i < base.size(); ++i) {
    scaled.push_back({base[i].offset() * 5, base[i].wcet() * 5,
                      base[i].deadline() * 5, base[i].period() * 5});
  }
  const Message third = service.handle_message(solve_request(
      core::write_instance_string(
          rt::TaskSet::from_params(scaled, base.model()), platform)));
  EXPECT_EQ(third.get("cache"), "hit");
  EXPECT_EQ(third.get("verdict"), first.get("verdict"));

  EXPECT_EQ(service.counters().cache_hits, 2);
}

TEST(Service, NoCacheHeaderBypasses) {
  Service service;
  const std::string body = core::write_instance_string(
      testing::example1(), testing::example1_platform());
  (void)service.handle_message(solve_request(body));

  Message request = solve_request(body);
  request.set("no-cache", "1");
  const Message response = service.handle_message(request);
  EXPECT_EQ(response.get("cache"), "bypass");
  EXPECT_EQ(response.get("decided-by"), "flow-oracle");  // solved fresh
  EXPECT_EQ(service.counters().cache_hits, 0);
}

TEST(Service, MalformedInstanceDegradesToParseError) {
  Service service;
  const Message response =
      service.handle_message(solve_request("tasks two\n0 1 2 2\n"));
  EXPECT_EQ(response.kind, "error");
  EXPECT_EQ(response.get("error-kind"), "parse");
  EXPECT_EQ(response.get("verdict"), "unknown");
  EXPECT_EQ(response.get("cause"), "none");
  EXPECT_FALSE(response.body.empty());
  EXPECT_EQ(service.counters().parse_errors, 1);
}

TEST(Service, InvalidSystemDegradesToValidationError) {
  Service service;
  const Message response = service.handle_message(
      solve_request("tasks 1\n0 0 2 4\nprocessors 1\n"));  // wcet = 0
  EXPECT_EQ(response.kind, "error");
  EXPECT_EQ(response.get("error-kind"), "validation");
  EXPECT_EQ(service.counters().validation_errors, 1);
}

TEST(Service, UnknownKindAndUnknownMethodAreProtocolErrors) {
  Service service;
  Message bogus;
  bogus.kind = "teleport";
  EXPECT_EQ(service.handle_message(bogus).get("error-kind"), "protocol");

  Message request = solve_request(core::write_instance_string(
      testing::example1(), testing::example1_platform()));
  request.set("method", "quantum-annealing");
  EXPECT_EQ(service.handle_message(request).get("error-kind"), "protocol");
  EXPECT_EQ(service.counters().protocol_errors, 2);
}

TEST(Service, RawPayloadFunnelNeverThrows) {
  Service service;
  for (const std::string payload :
       {std::string("not a frame"), std::string(""),
        std::string("mgrts/1 solve\nbroken"),
        std::string(512, '\0')}) {
    const Message response = parse_message(service.handle(payload));
    EXPECT_EQ(response.kind, "error");
    EXPECT_EQ(response.get("error-kind"), "protocol");
  }
}

TEST(Service, StarvedDeadlineDegradesNotErrors) {
  Service service;
  // An arbitrary-deadline instance skips the constrained-only presolve
  // stages, and the generic engine polls the deadline before opening its
  // first decision — so a zero budget deterministically reads as expired.
  Message request = solve_request(core::write_instance_string(
      rt::TaskSet::from_params(
          {{0, 2, 4, 3}, {0, 2, 4, 3}, {0, 1, 3, 3}},
          rt::DeadlineModel::kArbitrary),
      rt::Platform::identical(2)));
  request.set("method", "CSP1(generic)");
  request.set("timeout-ms", std::int64_t{0});
  request.set("no-cache", "1");  // don't let the cache answer instantly
  const Message response = service.handle_message(request);
  EXPECT_EQ(response.kind, "ok");
  EXPECT_EQ(response.get("verdict"), "timeout");
  EXPECT_EQ(response.get("cause"), "deadline");
}

TEST(Service, CancelledContextReportsCancelled) {
  Service service;
  RequestContext context;
  context.cancel = support::CancelToken::make();
  context.cancel.cancel();  // cancelled before the solve starts

  Message request = solve_request(core::write_instance_string(
      testing::example1(), testing::example1_platform()));
  request.set("no-cache", "1");
  // Force a search backend: the flow oracle decides without polling, so a
  // pre-cancelled token needs a polling solver to be observed.
  request.set("method", "CSP2(dedicated)");
  const Message response = service.handle_message(request, context);
  EXPECT_EQ(response.kind, "ok");
  // Cancellation is cooperative: either the search finished before its
  // first poll, or it degraded to kTimeout attributed to the cancel.
  if (response.get("verdict") == "timeout") {
    EXPECT_EQ(response.get("cause"), "cancelled");
  } else {
    EXPECT_EQ(response.get("verdict"), "feasible");
  }
}

TEST(Service, IdIsEchoed) {
  Service service;
  Message request = solve_request(core::write_instance_string(
      testing::example1(), testing::example1_platform()));
  request.set("id", "tag-42");
  EXPECT_EQ(service.handle_message(request).get("id"), "tag-42");

  Message ping;
  ping.kind = "ping";
  ping.set("id", "tag-43");
  EXPECT_EQ(service.handle_message(ping).get("id"), "tag-43");
}

TEST(Service, HealthReportsTheCounterBlock) {
  Service service;
  const std::string good = core::write_instance_string(
      testing::example1(), testing::example1_platform());
  (void)service.handle_message(solve_request(good));
  (void)service.handle_message(solve_request(good));  // cache hit
  (void)service.handle_message(solve_request("tasks zero\n"));

  Message health;
  health.kind = "health";
  const Message response = service.handle_message(health);
  EXPECT_EQ(response.kind, "health");
  EXPECT_EQ(response.get_int("requests"), 4);  // 3 above + this health
  EXPECT_EQ(response.get_int("solved"), 2);
  EXPECT_EQ(response.get_int("decided"), 2);
  EXPECT_EQ(response.get_int("cache-hits"), 1);
  EXPECT_EQ(response.get_int("parse-errors"), 1);
  EXPECT_EQ(response.get_int("latency-samples"), 0);  // handle() path only
  EXPECT_FALSE(response.body.empty());  // first_error carries the parse mess
}

TEST(Service, ShutdownFlagFlips) {
  Service service;
  EXPECT_FALSE(service.shutdown_requested());
  Message request;
  request.kind = "shutdown";
  EXPECT_EQ(service.handle_message(request).kind, "bye");
  EXPECT_TRUE(service.shutdown_requested());
}

// The acceptance pin: a cached answer must equal a fresh solve of the same
// (permuted, rescaled) instance — over a generated stream, not just the
// fixture.
TEST(Service, CachedVerdictEqualsFreshSolve) {
  Service service;
  gen::GeneratorOptions g;
  g.tasks = 4;
  g.processors = 2;
  g.t_max = 5;
  for (std::uint64_t idx = 0; idx < 20; ++idx) {
    const gen::Instance inst = gen::generate_indexed(g, 20090908, idx);
    const rt::Platform platform = rt::Platform::identical(inst.processors);
    const std::string label = "instance " + std::to_string(idx);

    // Prime the cache with the original orientation.
    const Message primed = service.handle_message(
        solve_request(core::write_instance_string(inst.tasks, platform)));
    ASSERT_EQ(primed.kind, "ok") << label;

    // Permuted duplicate: answered from cache...
    const Message cached = service.handle_message(solve_request(
        core::write_instance_string(permuted(inst.tasks), platform)));
    ASSERT_EQ(cached.kind, "ok") << label;

    // ... and the same duplicate solved fresh with the cache bypassed.
    Message fresh_request = solve_request(
        core::write_instance_string(permuted(inst.tasks), platform));
    fresh_request.set("no-cache", "1");
    const Message fresh = service.handle_message(fresh_request);
    ASSERT_EQ(fresh.kind, "ok") << label;

    if (cached.get("cache") == "hit") {
      EXPECT_EQ(cached.get("verdict"), fresh.get("verdict"))
          << label << ": cached verdict diverged from a fresh solve";
    }
    // Both must agree with the polynomial ground truth.
    const bool truth = flow::is_feasible(inst.tasks, platform);
    EXPECT_EQ(fresh.get("verdict"), truth ? "feasible" : "infeasible")
        << label;
    EXPECT_EQ(cached.get("verdict"), truth ? "feasible" : "infeasible")
        << label;
  }
  EXPECT_GT(service.counters().cache_hits, 0);
}

// ------------------------------------------------------- socket end to end

std::string test_socket_path(const char* tag) {
  return "/tmp/mgrts_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(Daemon, SolvePingHealthOverTheSocket) {
  ServerOptions options;
  options.socket_path = test_socket_path("e2e");
  options.workers = 2;
  Server server(options);
  server.start();

  {
    Client client(options.socket_path);
    EXPECT_TRUE(client.ping());
  }
  {
    Client client(options.socket_path);
    const SolveResult result = client.solve(core::write_instance_string(
        testing::example1(), testing::example1_platform()));
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.verdict, core::Verdict::kFeasible);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.cause, core::FailureCause::kNone);
    EXPECT_EQ(result.decided_by, "flow-oracle");
  }
  {
    // A malformed instance through the real transport: tagged, not fatal.
    Client client(options.socket_path);
    const SolveResult result = client.solve("tasks banana\n");
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error_kind, "parse");
    EXPECT_EQ(result.verdict, core::Verdict::kUnknown);
  }
  {
    Client client(options.socket_path);
    const Message health = client.health();
    EXPECT_EQ(health.kind, "health");
    EXPECT_GE(health.get_int("requests").value_or(0), 3);
    EXPECT_EQ(health.get_int("solved"), 1);
    EXPECT_EQ(health.get_int("parse-errors"), 1);
  }

  server.stop();
}

TEST(Daemon, ShutdownRequestStopsTheAcceptLoop) {
  ServerOptions options;
  options.socket_path = test_socket_path("bye");
  options.workers = 2;
  options.poll_interval_ms = 50;
  Server server(options);
  server.start();

  {
    Client client(options.socket_path);
    client.shutdown();
  }
  // stop() joins the accept loop; after a shutdown request it must already
  // be unwinding, so this returns promptly rather than timing out.
  server.stop();
  EXPECT_TRUE(server.service().shutdown_requested());
}

TEST(Daemon, GarbageBytesOnTheSocketGetARefusalNotACrash) {
  ServerOptions options;
  options.socket_path = test_socket_path("garbage");
  options.workers = 2;
  Server server(options);
  server.start();

  {
    // A length prefix announcing far beyond kMaxFrameBytes: the server
    // must answer with a protocol refusal and drop the connection.
    support::Fd fd = support::connect_unix(options.socket_path);
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    support::write_all(fd, huge, 4);
    std::string payload;
    EXPECT_TRUE(recv_frame(fd, payload, 5'000));
    const Message refusal = parse_message(payload);
    EXPECT_EQ(refusal.kind, "error");
    EXPECT_EQ(refusal.get("error-kind"), "protocol");
  }
  {
    // The daemon is still alive and serving afterwards.
    Client client(options.socket_path);
    EXPECT_TRUE(client.ping());
  }

  server.stop();
}

}  // namespace
}  // namespace mgrts::serve
