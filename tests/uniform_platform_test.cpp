// Uniform platforms (§II's middle class: per-processor speeds s_j) across
// the whole solver stack.  Uniform machines exercise the heterogeneous
// code paths — weighted amounts (11)/(12), per-group symmetry (13),
// quality ordering — with a structure simple enough to reason about
// expected outcomes by hand.
#include <gtest/gtest.h>

#include "core/solve.hpp"
#include "csp2/csp2.hpp"
#include "encodings/csp1.hpp"
#include "encodings/csp2_generic.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "testing.hpp"

namespace mgrts {
namespace {

using rt::Platform;
using rt::TaskSet;

TEST(UniformPlatform, FastProcessorHalvesSlots) {
  // One saturating task, one speed-2 processor: C=4 fits into D=2.
  const TaskSet ts = TaskSet::from_params({{0, 4, 2, 2}});
  const Platform p = Platform::uniform({2});
  const auto result = csp2::solve(ts, p);
  ASSERT_EQ(result.status, csp2::Status::kFeasible);
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
  EXPECT_EQ(result.schedule->units_of(0), 2);  // 2 slots x rate 2 = C
}

TEST(UniformPlatform, SlowProcessorCannotCompensate) {
  // The same task on a unit-speed processor is impossible (C > D).
  const TaskSet ts = TaskSet::from_params({{0, 4, 2, 2}});
  const auto result = csp2::solve(ts, Platform::uniform({1, 1}));
  EXPECT_EQ(result.status, csp2::Status::kInfeasible);
}

TEST(UniformPlatform, ParityGapOnEvenSpeeds) {
  // C = 3 with only speed-2 processors: equality (12) unreachable.
  const TaskSet ts = TaskSet::from_params({{0, 3, 2, 2}});
  const auto result = csp2::solve(ts, Platform::uniform({2, 2}));
  EXPECT_EQ(result.status, csp2::Status::kInfeasible);
}

TEST(UniformPlatform, MixedSpeedsSplitWork) {
  // C=3 = one slot at speed 2 + one at speed 1.
  const TaskSet ts = TaskSet::from_params({{0, 3, 2, 2}});
  const Platform p = Platform::uniform({1, 2});
  csp2::Options options;
  options.idle_rule = false;  // complete search on non-identical platforms
  const auto result = csp2::solve(ts, p, options);
  ASSERT_EQ(result.status, csp2::Status::kFeasible);
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
  EXPECT_TRUE(result.search_complete);
}

TEST(UniformPlatform, IdenticalSpeedGroupsShareSymmetry) {
  const Platform p = Platform::uniform({1, 2, 1, 2});
  const auto groups = p.identical_groups(3);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<rt::ProcId>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<rt::ProcId>{1, 3}));
}

TEST(UniformPlatform, QualityOrderPutsSlowFirst) {
  const TaskSet ts = mgrts::testing::example1();
  const Platform p = Platform::uniform({3, 1, 2});
  const auto order = p.processors_by_quality(ts);
  EXPECT_EQ(order, (std::vector<rt::ProcId>{1, 2, 0}));
}

TEST(UniformPlatform, EncodingsAgreeWithDedicated) {
  // Random sweep on a two-speed platform: CSP1, CSP2-generic and the
  // complete dedicated configuration must agree; witnesses validate.
  int decided_feasible = 0;
  for (std::uint64_t k = 0; k < 25; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 3;
    gopt.processors = 2;
    gopt.t_max = 4;
    const auto inst = gen::generate_indexed(gopt, 777, k);
    const Platform p = Platform::uniform({1, 2});

    core::SolveConfig generic;
    generic.method = core::Method::kCsp2Generic;
    generic.time_limit_ms = 20'000;
    const auto expected = core::solve_instance(inst.tasks, p, generic);
    ASSERT_TRUE(expected.verdict == core::Verdict::kFeasible ||
                expected.verdict == core::Verdict::kInfeasible);

    core::SolveConfig csp1;
    csp1.method = core::Method::kCsp1Generic;
    csp1.time_limit_ms = 20'000;
    const auto csp1_report = core::solve_instance(inst.tasks, p, csp1);
    if (csp1_report.verdict == core::Verdict::kFeasible ||
        csp1_report.verdict == core::Verdict::kInfeasible) {
      EXPECT_EQ(csp1_report.verdict, expected.verdict) << "instance " << k;
    }

    core::SolveConfig dedicated;
    dedicated.method = core::Method::kCsp2Dedicated;
    dedicated.csp2.idle_rule = false;
    dedicated.time_limit_ms = 20'000;
    const auto ded = core::solve_instance(inst.tasks, p, dedicated);
    if (ded.verdict == core::Verdict::kFeasible ||
        ded.verdict == core::Verdict::kInfeasible) {
      EXPECT_EQ(ded.verdict, expected.verdict) << "instance " << k;
    }

    if (expected.verdict == core::Verdict::kFeasible) {
      ++decided_feasible;
      EXPECT_TRUE(expected.witness_valid) << "instance " << k;
    }
  }
  EXPECT_GT(decided_feasible, 3);
}

TEST(UniformPlatform, FacadeValidatesUniformWitnesses) {
  const TaskSet ts = TaskSet::from_params({{0, 2, 2, 2}, {0, 4, 4, 4}});
  const Platform p = Platform::uniform({1, 2});
  core::SolveConfig config;
  config.method = core::Method::kCsp2Generic;
  const auto report = core::solve_instance(ts, p, config);
  if (report.verdict == core::Verdict::kFeasible) {
    EXPECT_TRUE(report.witness_valid);
  }
}

}  // namespace
}  // namespace mgrts
