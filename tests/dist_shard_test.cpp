// Distributed batch layer (DESIGN.md §16): shard codec round-trips, the
// spec registry, the shard planner, and the merge-determinism contract —
// a sharded batch (workerless or over real worker daemons, any worker
// count, adversarial shard boundaries) produces records identical to a
// single-box exp::run_batch on every field except wall-clock seconds.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "csp2/csp2.hpp"
#include "dist/coord.hpp"
#include "dist/shard_exec.hpp"
#include "dist/worker.hpp"
#include "exp/harness.hpp"
#include "exp/sharded.hpp"
#include "serve/shard.hpp"
#include "serve/wire.hpp"
#include "support/error.hpp"

namespace mgrts::dist {
namespace {

std::string test_socket_path(const char* tag) {
  return "/tmp/mgrts_dist_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// ------------------------------------------------------------ shard codec

serve::ShardRequest sample_request() {
  serve::ShardRequest request;
  request.shard_id = "s3/a2";
  request.generator.tasks = 9;
  request.generator.processors = 4;
  request.generator.t_max = 6;
  request.generator.rule = gen::ProcessorRule::kUniform;
  request.generator.order = gen::ParamOrder::kCdt;
  request.generator.with_offsets = true;
  request.seed = 20090911;
  request.specs = {"csp2-dmc", "csp1"};
  request.time_limit_ms = 750;
  request.max_nodes = 12'345;
  request.max_variables = 777;
  request.max_attempts = 2;
  request.indices = {0, 7, 8, 9, 42};
  return request;
}

TEST(ShardCodec, RequestRoundTripsEveryField) {
  const serve::ShardRequest request = sample_request();
  const serve::ShardRequest parsed = serve::parse_shard_request(
      serve::parse_message(serve::format_message(
          serve::encode_shard_request(request))));
  EXPECT_EQ(parsed.shard_id, request.shard_id);
  EXPECT_EQ(parsed.generator.tasks, request.generator.tasks);
  EXPECT_EQ(parsed.generator.processors, request.generator.processors);
  EXPECT_EQ(parsed.generator.t_max, request.generator.t_max);
  EXPECT_EQ(parsed.generator.rule, request.generator.rule);
  EXPECT_EQ(parsed.generator.order, request.generator.order);
  EXPECT_EQ(parsed.generator.with_offsets, request.generator.with_offsets);
  EXPECT_EQ(parsed.seed, request.seed);
  EXPECT_EQ(parsed.specs, request.specs);
  EXPECT_EQ(parsed.time_limit_ms, request.time_limit_ms);
  EXPECT_EQ(parsed.max_nodes, request.max_nodes);
  EXPECT_EQ(parsed.max_variables, request.max_variables);
  EXPECT_EQ(parsed.max_attempts, request.max_attempts);
  EXPECT_EQ(parsed.indices, request.indices);
}

TEST(ShardCodec, RowRoundTripsTheFullRunRecordSurface) {
  serve::ShardRow row;
  row.shard_id = "s0/a1";
  row.record.index = 17;
  row.record.tasks = 9;
  row.record.processors = 4;
  row.record.hyperperiod = 2'520;
  row.record.ratio = 0.87500000000000011;  // not representable in short form
  row.record.exceeds_capacity = false;

  exp::RunRecord decided;
  decided.verdict = core::Verdict::kFeasible;
  decided.seconds = 0.04150390625;
  decided.witness_ok = true;
  decided.complete = true;
  decided.nodes = 1'234;
  decided.decided_by = "backend: csp2 generic (D-C)";
  decided.nogoods.recorded = 11;
  decided.nogoods.replay_hits = 3;
  decided.nogoods.lits_before = 40;
  decided.nogoods.lits_after = 25;
  decided.nogoods.backjumps = 5;
  decided.nogoods.backjump_levels_saved = 12;
  decided.nogoods.lits_minimized = 7;
  decided.propagators.push_back(
      core::PropagatorStats{"all-different matching", 10, 8, 6, 0.25});
  decided.propagators.push_back(
      core::PropagatorStats{"demand table", 4, 4, 0, 0.0});

  exp::RunRecord overrun;  // empty decided_by, a failure cause, no stats
  overrun.verdict = core::Verdict::kUnknown;
  overrun.complete = false;
  overrun.failure_cause = core::FailureCause::kMemory;

  row.record.runs = {decided, overrun};

  const serve::ShardRow parsed = serve::parse_shard_row(
      serve::parse_message(serve::format_message(serve::encode_shard_row(row))));
  EXPECT_EQ(parsed.shard_id, row.shard_id);
  EXPECT_EQ(parsed.record.index, row.record.index);
  EXPECT_EQ(parsed.record.tasks, row.record.tasks);
  EXPECT_EQ(parsed.record.processors, row.record.processors);
  EXPECT_EQ(parsed.record.hyperperiod, row.record.hyperperiod);
  EXPECT_EQ(parsed.record.ratio, row.record.ratio);  // %.17g: bit-exact
  EXPECT_EQ(parsed.record.exceeds_capacity, row.record.exceeds_capacity);
  ASSERT_EQ(parsed.record.runs.size(), 2u);

  const exp::RunRecord& d = parsed.record.runs[0];
  EXPECT_EQ(d.verdict, decided.verdict);
  EXPECT_EQ(d.seconds, decided.seconds);
  EXPECT_EQ(d.witness_ok, decided.witness_ok);
  EXPECT_EQ(d.complete, decided.complete);
  EXPECT_EQ(d.nodes, decided.nodes);
  EXPECT_EQ(d.decided_by, decided.decided_by);  // spaces survive
  EXPECT_EQ(d.failure_cause, core::FailureCause::kNone);
  EXPECT_EQ(d.nogoods.recorded, decided.nogoods.recorded);
  EXPECT_EQ(d.nogoods.replay_hits, decided.nogoods.replay_hits);
  EXPECT_EQ(d.nogoods.lits_before, decided.nogoods.lits_before);
  EXPECT_EQ(d.nogoods.lits_after, decided.nogoods.lits_after);
  EXPECT_EQ(d.nogoods.backjumps, decided.nogoods.backjumps);
  EXPECT_EQ(d.nogoods.backjump_levels_saved,
            decided.nogoods.backjump_levels_saved);
  EXPECT_EQ(d.nogoods.lits_minimized, decided.nogoods.lits_minimized);
  ASSERT_EQ(d.propagators.size(), 2u);
  EXPECT_EQ(d.propagators[0].name, "all-different matching");
  EXPECT_EQ(d.propagators[0].wakes, 10);
  EXPECT_EQ(d.propagators[0].runs, 8);
  EXPECT_EQ(d.propagators[0].prunes, 6);
  EXPECT_EQ(d.propagators[0].seconds, 0.25);
  EXPECT_EQ(d.propagators[1].name, "demand table");

  const exp::RunRecord& o = parsed.record.runs[1];
  EXPECT_EQ(o.verdict, core::Verdict::kUnknown);
  EXPECT_FALSE(o.complete);
  EXPECT_TRUE(o.decided_by.empty());
  EXPECT_EQ(o.failure_cause, core::FailureCause::kMemory);
  EXPECT_EQ(o.nogoods.recorded, 0);
  EXPECT_TRUE(o.propagators.empty());
}

TEST(ShardCodec, BeatAndDoneRoundTrip) {
  serve::ShardBeat beat;
  beat.shard_id = "s1/a3";
  beat.beat = 987'654'321;
  beat.done = 3;
  beat.total = 8;
  const serve::ShardBeat b = serve::parse_shard_beat(
      serve::parse_message(serve::format_message(serve::encode_shard_beat(beat))));
  EXPECT_EQ(b.shard_id, beat.shard_id);
  EXPECT_EQ(b.beat, beat.beat);
  EXPECT_EQ(b.done, beat.done);
  EXPECT_EQ(b.total, beat.total);

  serve::ShardDone done;
  done.shard_id = "s1/a3";
  done.rows = 8;
  done.health.failures = 2;
  done.health.retries = 3;
  done.health.recovered = 1;
  done.health.quarantined = 1;
  done.health.first_error = "resource: variable budget exceeded";
  const serve::ShardDone d = serve::parse_shard_done(
      serve::parse_message(serve::format_message(serve::encode_shard_done(done))));
  EXPECT_EQ(d.shard_id, done.shard_id);
  EXPECT_EQ(d.rows, done.rows);
  EXPECT_EQ(d.health.failures, done.health.failures);
  EXPECT_EQ(d.health.retries, done.health.retries);
  EXPECT_EQ(d.health.recovered, done.health.recovered);
  EXPECT_EQ(d.health.quarantined, done.health.quarantined);
  EXPECT_EQ(d.health.first_error, done.health.first_error);
}

TEST(ShardCodec, MalformedFramesRefuseExactly) {
  // Wrong kind.
  serve::Message wrong = serve::encode_shard_beat(serve::ShardBeat{});
  EXPECT_THROW((void)serve::parse_shard_request(wrong), serve::ProtocolError);

  // Missing a required header.
  serve::Message request = serve::encode_shard_request(sample_request());
  request.headers.erase(
      std::remove_if(request.headers.begin(), request.headers.end(),
                     [](const auto& kv) { return kv.first == "gen-tasks"; }),
      request.headers.end());
  EXPECT_THROW((void)serve::parse_shard_request(request), serve::ProtocolError);

  const auto rewrite = [](serve::Message& msg, const std::string& key,
                          const std::string& value) {
    for (auto& kv : msg.headers) {
      if (kv.first == key) kv.second = value;
    }
  };

  // Non-numeric where an integer is required.
  serve::Message beat = serve::encode_shard_beat(serve::ShardBeat{});
  rewrite(beat, "beat", "soon");
  EXPECT_THROW((void)serve::parse_shard_beat(beat), serve::ProtocolError);

  // Unknown enum token.
  serve::Message rule = serve::encode_shard_request(sample_request());
  rewrite(rule, "gen-rule", "harmonic");
  EXPECT_THROW((void)serve::parse_shard_request(rule), serve::ProtocolError);

  // A row whose body line is cut mid-run.
  serve::Message row = serve::encode_shard_row([] {
    serve::ShardRow r;
    r.shard_id = "s0/a1";
    r.record.runs.emplace_back();
    return r;
  }());
  row.body = row.body.substr(0, row.body.find(' ') + 2);
  EXPECT_THROW((void)serve::parse_shard_row(row), serve::ProtocolError);
}

// ----------------------------------------------------------- spec registry

TEST(SpecRegistry, EveryKnownNameResolvesAndUnknownRefuses) {
  const std::vector<std::string> names = exp::known_spec_names();
  EXPECT_GE(names.size(), 9u);
  for (const std::string& name : names) {
    const auto spec = exp::spec_from_name(name, 500);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_FALSE(spec->label.empty()) << name;
    EXPECT_EQ(spec->config.time_limit_ms, 500) << name;
  }
  EXPECT_FALSE(exp::spec_from_name("csp3", 500).has_value());
  EXPECT_FALSE(exp::spec_from_name("", 500).has_value());
}

TEST(SpecRegistry, NamesMatchTheLocalConstructors) {
  // The registry exists so a wire name reproduces the local spec exactly;
  // pin the two labels that the determinism tests below depend on.
  EXPECT_EQ(exp::spec_from_name("csp2-dmc", 500)->label,
            exp::csp2_spec(csp2::ValueOrder::kDMinusC, 500).label);
  EXPECT_EQ(exp::spec_from_name("pipeline", 500)->label,
            exp::pipeline_spec(500).label);
}

// ------------------------------------------------------------ shard plans

TEST(ShardPlan, ContiguousBalancedAndOrderPreserving) {
  const std::vector<std::uint64_t> indices = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (const std::int32_t count : {1, 2, 3, 4, 7, 10, 99}) {
    const auto shards = plan_shards(indices, count);
    EXPECT_EQ(shards.size(),
              static_cast<std::size_t>(std::min<std::int32_t>(
                  count < 1 ? 1 : count, 10)));
    std::vector<std::uint64_t> glued;
    std::size_t largest = 0, smallest = indices.size();
    for (const auto& shard : shards) {
      EXPECT_FALSE(shard.empty());
      largest = std::max(largest, shard.size());
      smallest = std::min(smallest, shard.size());
      glued.insert(glued.end(), shard.begin(), shard.end());
    }
    EXPECT_EQ(glued, indices) << "count=" << count;
    EXPECT_LE(largest - smallest, 1u) << "count=" << count;
  }
}

// ------------------------------------------------- merge determinism

/// Everything but seconds: the distributed contract is "the same record",
/// and wall-clock is the one field a different box may legitimately change.
void expect_run_equal(const exp::RunRecord& a, const exp::RunRecord& b,
                      const std::string& label) {
  EXPECT_EQ(a.verdict, b.verdict) << label;
  EXPECT_EQ(a.witness_ok, b.witness_ok) << label;
  EXPECT_EQ(a.complete, b.complete) << label;
  EXPECT_EQ(a.nodes, b.nodes) << label;
  EXPECT_EQ(a.decided_by, b.decided_by) << label;
  EXPECT_EQ(a.failure_cause, b.failure_cause) << label;
  EXPECT_EQ(a.nogoods.recorded, b.nogoods.recorded) << label;
  EXPECT_EQ(a.nogoods.replay_hits, b.nogoods.replay_hits) << label;
  EXPECT_EQ(a.nogoods.lits_before, b.nogoods.lits_before) << label;
  EXPECT_EQ(a.nogoods.lits_after, b.nogoods.lits_after) << label;
  EXPECT_EQ(a.nogoods.backjumps, b.nogoods.backjumps) << label;
  EXPECT_EQ(a.nogoods.lits_minimized, b.nogoods.lits_minimized) << label;
  ASSERT_EQ(a.propagators.size(), b.propagators.size()) << label;
  for (std::size_t p = 0; p < a.propagators.size(); ++p) {
    EXPECT_EQ(a.propagators[p].name, b.propagators[p].name) << label;
    EXPECT_EQ(a.propagators[p].wakes, b.propagators[p].wakes) << label;
    EXPECT_EQ(a.propagators[p].runs, b.propagators[p].runs) << label;
    EXPECT_EQ(a.propagators[p].prunes, b.propagators[p].prunes) << label;
  }
}

void expect_batches_equal(const exp::BatchResult& a, const exp::BatchResult& b,
                          const std::string& tag) {
  ASSERT_EQ(a.labels, b.labels) << tag;
  ASSERT_EQ(a.instances.size(), b.instances.size()) << tag;
  for (std::size_t k = 0; k < a.instances.size(); ++k) {
    const exp::InstanceRecord& x = a.instances[k];
    const exp::InstanceRecord& y = b.instances[k];
    const std::string label =
        tag + ": index " + std::to_string(x.index);
    EXPECT_EQ(x.index, y.index) << label;
    EXPECT_EQ(x.tasks, y.tasks) << label;
    EXPECT_EQ(x.processors, y.processors) << label;
    EXPECT_EQ(x.hyperperiod, y.hyperperiod) << label;
    EXPECT_EQ(x.ratio, y.ratio) << label;
    EXPECT_EQ(x.exceeds_capacity, y.exceeds_capacity) << label;
    ASSERT_EQ(x.runs.size(), y.runs.size()) << label;
    for (std::size_t s = 0; s < x.runs.size(); ++s) {
      expect_run_equal(x.runs[s], y.runs[s],
                       label + " spec " + a.labels[s]);
    }
  }
}

exp::BatchOptions small_batch() {
  exp::BatchOptions options;
  options.generator.tasks = 8;
  options.generator.processors = 4;
  options.generator.t_max = 6;
  options.instances = 10;
  options.seed = 20090911;
  return options;
}

// Budget-insensitive line-up: generous wall budget, so every verdict and
// node count is a pure function of (seed, index) — comparable bit for bit.
const std::vector<std::string> kLineup = {"csp2-dmc", "csp2-rm"};
constexpr std::int64_t kTimeLimitMs = 20'000;

TEST(MergeDeterminism, WorkerlessShardedEqualsRunBatch) {
  const exp::BatchOptions options = small_batch();
  std::vector<exp::SolverSpec> specs;
  for (const std::string& name : kLineup) {
    specs.push_back(*exp::spec_from_name(name, kTimeLimitMs, options.seed));
  }
  const exp::BatchResult truth = exp::run_batch(options, specs);

  for (const std::int32_t shard_count : {1, 3, 10}) {
    FleetOptions fleet;  // no workers: in-process reference path
    fleet.shards = shard_count;
    FleetStats stats;
    const exp::BatchResult sharded =
        exp::run_batch_sharded(options, kLineup, kTimeLimitMs, fleet, &stats);
    EXPECT_EQ(stats.shards, std::min<std::int32_t>(shard_count, 10));
    EXPECT_EQ(stats.duplicate_rows, 0);
    expect_batches_equal(sharded, truth,
                         "shards=" + std::to_string(shard_count));
  }
}

TEST(MergeDeterminism, ExplicitIndexListsSurviveSharding) {
  // A residue-style index list: non-contiguous, unsorted order is the
  // batch's order and must be the merge's order too.
  exp::BatchOptions options = small_batch();
  options.indices = {9, 0, 4, 7, 2};
  std::vector<exp::SolverSpec> specs;
  for (const std::string& name : kLineup) {
    specs.push_back(*exp::spec_from_name(name, kTimeLimitMs, options.seed));
  }
  const exp::BatchResult truth = exp::run_batch(options, specs);

  FleetOptions fleet;
  fleet.shards = 2;
  const exp::BatchResult sharded =
      exp::run_batch_sharded(options, kLineup, kTimeLimitMs, fleet, nullptr);
  expect_batches_equal(sharded, truth, "explicit indices");
  ASSERT_EQ(sharded.instances.size(), 5u);
  EXPECT_EQ(sharded.instances.front().index, 9u);
  EXPECT_EQ(sharded.instances.back().index, 2u);
}

TEST(MergeDeterminism, DuplicateIndicesRefuse) {
  exp::BatchOptions options = small_batch();
  options.indices = {1, 2, 1};
  EXPECT_THROW((void)exp::run_batch_sharded(options, kLineup, kTimeLimitMs,
                                            FleetOptions{}, nullptr),
               ValidationError);
}

TEST(MergeDeterminism, UnknownSpecNameRefuses) {
  EXPECT_THROW((void)exp::run_batch_sharded(small_batch(), {"csp3"},
                                            kTimeLimitMs, FleetOptions{},
                                            nullptr),
               ValidationError);
}

class WorkerFleet {
 public:
  explicit WorkerFleet(int count, const char* tag) {
    for (int w = 0; w < count; ++w) {
      WorkerOptions options;
      options.socket_path =
          test_socket_path((std::string(tag) + std::to_string(w)).c_str());
      options.beat_interval_ms = 20;
      workers_.push_back(std::make_unique<WorkerServer>(options));
      workers_.back()->start();
      sockets_.push_back(options.socket_path);
    }
  }
  ~WorkerFleet() {
    for (auto& worker : workers_) worker->stop();
  }
  [[nodiscard]] const std::vector<std::string>& sockets() const {
    return sockets_;
  }
  [[nodiscard]] WorkerServer& at(std::size_t k) { return *workers_[k]; }

 private:
  std::vector<std::unique_ptr<WorkerServer>> workers_;
  std::vector<std::string> sockets_;
};

TEST(MergeDeterminism, FleetsOfOneTwoAndFourWorkersMatchSingleBox) {
  const exp::BatchOptions options = small_batch();
  const exp::BatchResult truth = exp::run_batch_sharded(
      options, kLineup, kTimeLimitMs, FleetOptions{}, nullptr);

  for (const int worker_count : {1, 2, 4}) {
    WorkerFleet fleet_procs(worker_count, "fleet");
    FleetOptions fleet;
    fleet.workers = fleet_procs.sockets();
    // Adversarial boundary: more shards than indices-per-worker divides
    // evenly, so slices of size 2 and 1 both occur.
    fleet.shards = 7;
    FleetStats stats;
    const exp::BatchResult sharded =
        exp::run_batch_sharded(options, kLineup, kTimeLimitMs, fleet, &stats);
    EXPECT_EQ(stats.duplicate_rows, 0) << worker_count;
    EXPECT_EQ(stats.local_fallbacks, 0) << worker_count;
    expect_batches_equal(sharded, truth,
                         "workers=" + std::to_string(worker_count));
  }
}

TEST(MergeDeterminism, QuarantineCausesSurviveTheWire) {
  // A variable budget every run blows at encode time (the generic-engine
  // encodings enforce SolverLimits::max_variables; the CSP1 model needs
  // far more than 8): each ResourceError is contained to (kMemoryLimit,
  // kMemory) by core::solve_batch on the worker, retried once
  // (max_attempts=2), quarantined, and the cause plus the health counters
  // must arrive in the merged result exactly as the in-process path
  // produces them.
  const exp::BatchOptions options = [] {
    exp::BatchOptions o = small_batch();
    o.instances = 4;
    return o;
  }();
  FleetOptions pinched;
  pinched.max_variables = 8;  // far below any schedule table
  pinched.max_attempts = 2;
  FleetStats local_stats;
  const exp::BatchResult truth = exp::run_batch_sharded(
      options, {"csp1"}, kTimeLimitMs, pinched, &local_stats);

  WorkerFleet fleet_procs(2, "quar");
  FleetOptions fleet = pinched;
  fleet.workers = fleet_procs.sockets();
  FleetStats stats;
  const exp::BatchResult sharded =
      exp::run_batch_sharded(options, {"csp1"}, kTimeLimitMs, fleet, &stats);

  expect_batches_equal(sharded, truth, "quarantine");
  for (const exp::InstanceRecord& inst : sharded.instances) {
    ASSERT_EQ(inst.runs.size(), 1u);
    EXPECT_EQ(inst.runs[0].verdict, core::Verdict::kMemoryLimit);
    EXPECT_EQ(inst.runs[0].failure_cause, core::FailureCause::kMemory);
  }
  EXPECT_EQ(sharded.health.failures, truth.health.failures);
  EXPECT_EQ(sharded.health.retries, truth.health.retries);
  EXPECT_EQ(sharded.health.quarantined, truth.health.quarantined);
  EXPECT_GT(sharded.health.quarantined, 0);
  EXPECT_FALSE(sharded.health.first_error.empty());
}

TEST(Executor, CancelStopsAtTheNextIndexBoundary) {
  serve::ShardRequest request;
  request.shard_id = "s0/a1";
  request.generator = small_batch().generator;
  request.seed = small_batch().seed;
  request.specs = {"csp2-dmc"};
  request.time_limit_ms = kTimeLimitMs;
  request.indices = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};

  auto cancel = support::CancelToken::make();
  int rows_seen = 0;
  const ShardExecution partial = execute_shard(
      request, cancel, nullptr, [&](const exp::InstanceRecord&) {
        if (++rows_seen == 3) cancel.cancel();
      });
  EXPECT_EQ(partial.rows.size(), 3u);  // stopped well short of 10
}

}  // namespace
}  // namespace mgrts::dist
