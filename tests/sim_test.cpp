#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "csp2/csp2.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::sim {
namespace {

using mgrts::testing::dhall2;
using mgrts::testing::example1;
using mgrts::testing::light3;
using rt::Platform;
using rt::TaskSet;

TEST(Simulator, LightLoadSchedulableUnderEdf) {
  const TaskSet ts = light3();
  const Platform p = Platform::identical(2);
  const SimResult result = simulate(ts, p);
  ASSERT_EQ(result.status, SimStatus::kSchedulable);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
}

TEST(Simulator, DhallEffectEdfMisses) {
  // The classic global-EDF anomaly: two light tasks occupy both processors
  // at t=0 (equal deadlines), starving the heavy task.  The instance itself
  // is feasible (csp2 test) — this is the paper's motivation for exact
  // approaches.
  const SimResult result = simulate(dhall2(), Platform::identical(2));
  EXPECT_EQ(result.status, SimStatus::kDeadlineMiss);
  EXPECT_EQ(result.miss_task, 2);
  EXPECT_EQ(result.miss_time, 2);
}

TEST(Simulator, DhallInstanceFeasibleForCsp2) {
  const auto result = csp2::solve(dhall2(), Platform::identical(2));
  EXPECT_EQ(result.status, csp2::Status::kFeasible);
}

TEST(Simulator, FixedPriorityRespectsOrder) {
  // tau3 (the heavy task) at top priority fixes the Dhall instance.
  SimOptions options;
  options.policy = Policy::kFixedPriority;
  options.priority = {2, 0, 1};
  const TaskSet ts = dhall2();
  const Platform p = Platform::identical(2);
  const SimResult result = simulate(ts, p, options);
  ASSERT_EQ(result.status, SimStatus::kSchedulable);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_TRUE(rt::is_valid_schedule(ts, p, *result.schedule));
  // Highest priority task runs at slot 0.
  EXPECT_EQ(result.schedule->at(0, 0), 2);
}

TEST(Simulator, FixedPriorityBadOrderMisses) {
  SimOptions options;
  options.policy = Policy::kFixedPriority;
  options.priority = {0, 1, 2};  // heavy task last: same miss as EDF
  const SimResult result = simulate(dhall2(), Platform::identical(2), options);
  EXPECT_EQ(result.status, SimStatus::kDeadlineMiss);
}

TEST(Simulator, OffsetTasksConverge) {
  const TaskSet ts = example1();
  const SimResult result = simulate(ts, Platform::identical(3));
  // With three processors EDF has enough slack; the steady state must
  // appear and produce a valid cyclic witness.
  ASSERT_EQ(result.status, SimStatus::kSchedulable);
  if (result.schedule.has_value()) {
    EXPECT_TRUE(
        rt::is_valid_schedule(ts, Platform::identical(3), *result.schedule));
  }
}

TEST(Simulator, SingleTaskOnSingleProcessor) {
  const TaskSet ts = TaskSet::from_params({{0, 2, 3, 4}});
  const SimResult result = simulate(ts, Platform::identical(1));
  ASSERT_EQ(result.status, SimStatus::kSchedulable);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_EQ(result.schedule->units_of(0), 2);
}

TEST(Simulator, OverloadMissesQuickly) {
  const SimResult result =
      simulate(mgrts::testing::overloaded1(), Platform::identical(1));
  EXPECT_EQ(result.status, SimStatus::kDeadlineMiss);
  EXPECT_GE(result.miss_time, 0);
}

TEST(Simulator, RejectsHeterogeneousPlatform) {
  EXPECT_THROW(
      static_cast<void>(simulate(example1(),
                                 Platform::heterogeneous({{1}, {1}, {1}}))),
      ValidationError);
}

TEST(Simulator, RejectsMalformedPriorityVector) {
  SimOptions options;
  options.policy = Policy::kFixedPriority;
  options.priority = {0, 0, 1};  // duplicate
  EXPECT_THROW(
      static_cast<void>(simulate(example1(), Platform::identical(2), options)),
      ValidationError);
  options.priority = {0, 1};  // wrong arity
  EXPECT_THROW(
      static_cast<void>(simulate(example1(), Platform::identical(2), options)),
      ValidationError);
}

TEST(Simulator, RejectsArbitraryDeadlines) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, rt::DeadlineModel::kArbitrary);
  EXPECT_THROW(static_cast<void>(simulate(ts, Platform::identical(1))),
               ValidationError);
}

TEST(Simulator, EdfWitnessAlwaysValidWhenPresent) {
  // Property sweep: every schedulable-with-witness verdict validates.
  int schedulable = 0;
  for (std::uint64_t k = 0; k < 60; ++k) {
    gen::GeneratorOptions options;
    options.tasks = 4;
    options.processors = 2;
    options.t_max = 6;
    options.with_offsets = (k % 2 == 0);
    const auto inst = gen::generate_indexed(options, 808, k);
    const Platform p = Platform::identical(inst.processors);
    const SimResult result = simulate(inst.tasks, p);
    if (result.status == SimStatus::kSchedulable &&
        result.schedule.has_value()) {
      ++schedulable;
      EXPECT_TRUE(rt::is_valid_schedule(inst.tasks, p, *result.schedule))
          << "instance " << k;
    }
  }
  EXPECT_GT(schedulable, 5);
}

}  // namespace
}  // namespace mgrts::sim
