// Tests for the event-driven incremental propagation engine: event
// filtering (kFixedOnly watchers never see prune events), trailed
// propagator state surviving backtracking and restarts, and a randomized
// differential check that the incremental mode explores exactly the tree
// the from-scratch reference explores.  The search-stack layer rides the
// same harness: heap selection must explore the scan's tree bit-for-bit,
// nogood-enabled search must return the scan on verdicts, and the
// symmetry-chain pair worklist must match the full-sweep reference.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "csp/nogoods.hpp"
#include "csp/propagators.hpp"
#include "csp/solver.hpp"
#include "encodings/csp1.hpp"
#include "encodings/csp2_generic.hpp"
#include "gen/generator.hpp"
#include "rt/platform.hpp"

namespace mgrts::csp {
namespace {

// ------------------------------------------------------------ event filter

/// Observes events without pruning; records the domain size seen at every
/// advisor call.
class EventRecorder final : public Propagator {
 public:
  EventRecorder(std::vector<VarId> vars, WakePolicy policy,
                std::vector<int>* sizes_seen)
      : vars_(std::move(vars)), policy_(policy), sizes_seen_(sizes_seen) {}

  PropResult propagate(Solver&) override { return PropResult::kOk; }
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "recorder"; }
  [[nodiscard]] WakePolicy wake_policy() const override { return policy_; }
  bool on_event(Solver& solver, std::int32_t pos, std::uint64_t) override {
    sizes_seen_->push_back(
        solver.domain(vars_[static_cast<std::size_t>(pos)]).size());
    return false;
  }

 private:
  std::vector<VarId> vars_;
  WakePolicy policy_;
  std::vector<int>* sizes_seen_;
};

/// Removes one value from its variable on its first run, then stays quiet —
/// produces a prune event that does not fix the variable.
class OnePruner final : public Propagator {
 public:
  explicit OnePruner(VarId var, Value remove) : vars_{var}, remove_(remove) {}
  PropResult propagate(Solver& solver) override {
    if (done_) return PropResult::kOk;
    done_ = true;
    return solver.remove(vars_[0], remove_);
  }
  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override { return "one-pruner"; }

 private:
  std::vector<VarId> vars_;
  Value remove_;
  bool done_ = false;
};

TEST(EventEngine, FixedOnlyWatcherNeverWakesOnPrune) {
  Solver solver;
  const VarId x = solver.add_variable(0, 3);
  std::vector<int> fixed_sizes;
  std::vector<int> any_sizes;
  solver.add(std::make_unique<OnePruner>(x, 3));
  solver.add(std::make_unique<EventRecorder>(
      std::vector<VarId>{x}, WakePolicy::kFixedOnly, &fixed_sizes));
  solver.add(std::make_unique<EventRecorder>(
      std::vector<VarId>{x}, WakePolicy::kAnyChange, &any_sizes));

  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);

  // The any-change watcher saw the root prune (domain size 3) and the
  // search decision that fixed x (size 1).
  ASSERT_GE(any_sizes.size(), 2u);
  EXPECT_EQ(any_sizes.front(), 3);
  EXPECT_EQ(any_sizes.back(), 1);

  // The fixed-only watcher woke exactly once — for the fix — and never for
  // the prune: every event it saw had a singleton domain.
  ASSERT_FALSE(fixed_sizes.empty());
  for (const int size : fixed_sizes) EXPECT_EQ(size, 1);
}

// -------------------------------------------------- trailed state restore

/// Maintains an incremental count of scope variables containing `value`
/// through advisor events and cross-checks it against a from-scratch
/// recount on every run — any missed event or bad trail restore trips the
/// EXPECT inside the search.
class VerifiedCounter final : public Propagator {
 public:
  VerifiedCounter(std::vector<VarId> vars, Value value)
      : vars_(std::move(vars)), value_(value) {}

  void attach(Solver& solver) override {
    count_ = solver.alloc_state(0);
  }

  bool on_event(Solver& solver, std::int32_t pos,
                std::uint64_t old_mask) override {
    if (!primed_) return true;
    const Domain64& d = solver.domain(vars_[static_cast<std::size_t>(pos)]);
    const std::int64_t off = value_ - d.base();
    const bool had =
        off >= 0 && off < 64 && ((old_mask >> static_cast<unsigned>(off)) & 1U);
    const bool has = d.contains(value_);
    if (had != has) solver.set_state(count_, solver.state(count_) - 1);
    return true;
  }

  PropResult propagate(Solver& solver) override {
    std::int64_t fresh = 0;
    for (const VarId v : vars_) {
      if (solver.domain(v).contains(value_)) ++fresh;
    }
    if (!primed_) {
      primed_ = true;
      solver.set_state(count_, fresh);
      return PropResult::kOk;
    }
    ++checks;
    EXPECT_EQ(solver.state(count_), fresh)
        << "incremental counter diverged from the from-scratch recount";
    return PropResult::kOk;
  }

  [[nodiscard]] const std::vector<VarId>& scope() const override {
    return vars_;
  }
  [[nodiscard]] const char* name() const override {
    return "verified-counter";
  }

  int checks = 0;

 private:
  std::vector<VarId> vars_;
  Value value_;
  StateSlot count_ = -1;
  bool primed_ = false;
};

TEST(EventEngine, TrailedStateSurvivesBacktrackingAndRestarts) {
  // A model with heavy backtracking: a pigeonhole (8 variables, 7 values,
  // pairwise distinct — UNSAT) plus a counting rule, searched with
  // randomized restarts, so trailed counters are restored across deep
  // backtracks and full restart rewinds before every check.
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 8; ++k) vars.push_back(solver.add_variable(0, 6));
  solver.add(make_all_different_except(vars, /*except=*/-9));
  solver.add(make_count_eq(vars, /*value=*/6, /*target=*/1));
  auto counter = std::make_unique<VerifiedCounter>(vars, /*value=*/3);
  VerifiedCounter* probe = counter.get();
  solver.add(std::move(counter));

  SearchOptions options;
  options.val_heuristic = ValHeuristic::kRandom;
  options.random_var_ties = true;
  options.restart = RestartPolicy::kLuby;
  options.restart_scale = 2;
  options.seed = 11;
  const auto outcome = solver.solve(options);
  EXPECT_EQ(outcome.status, SolveStatus::kUnsat);
  EXPECT_GT(outcome.stats.restarts, 0) << "workload too easy to exercise "
                                          "restart restoration";
  EXPECT_GT(probe->checks, 10);
}

// -------------------------------------------------------- differential

csp::SolveOutcome solve_csp2_generic(const gen::Instance& inst,
                                     PropagationMode mode,
                                     std::uint64_t seed) {
  const auto model = enc::build_csp2_generic(
      inst.tasks, rt::Platform::identical(inst.processors));
  SearchOptions options;
  options.var_heuristic = VarHeuristic::kDomWdeg;
  options.val_heuristic = ValHeuristic::kRandom;
  options.random_var_ties = true;
  options.restart = RestartPolicy::kLuby;
  options.restart_scale = 16;
  options.propagation = mode;
  options.seed = seed;
  options.max_nodes = 20'000;
  return model.solver->solve(options);
}

TEST(EventEngine, IncrementalExploresSameTreeAsScratchOnCsp2) {
  gen::GeneratorOptions workload;
  workload.tasks = 10;
  workload.processors = 5;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 7;
  workload.order = gen::ParamOrder::kDFirst;

  for (std::uint64_t index = 0; index < 8; ++index) {
    const gen::Instance inst = gen::generate_indexed(workload, 777, index);
    const auto inc =
        solve_csp2_generic(inst, PropagationMode::kIncremental, index);
    const auto ref = solve_csp2_generic(inst, PropagationMode::kScratch,
                                        index);
    EXPECT_EQ(inc.status, ref.status) << "instance " << index;
    EXPECT_EQ(inc.stats.nodes, ref.stats.nodes) << "instance " << index;
    EXPECT_EQ(inc.stats.failures, ref.stats.failures) << "instance " << index;
    EXPECT_EQ(inc.stats.restarts, ref.stats.restarts) << "instance " << index;
    EXPECT_EQ(inc.assignment, ref.assignment) << "instance " << index;
  }
}

TEST(EventEngine, IncrementalExploresSameTreeAsScratchOnCsp1) {
  gen::GeneratorOptions workload;
  workload.tasks = 4;
  workload.processors = 2;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 5;

  for (std::uint64_t index = 0; index < 4; ++index) {
    const gen::Instance inst = gen::generate_indexed(workload, 4242, index);
    auto run = [&](PropagationMode mode) {
      const auto model = enc::build_csp1(
          inst.tasks, rt::Platform::identical(inst.processors));
      SearchOptions options;
      options.var_heuristic = VarHeuristic::kDomWdeg;
      options.val_heuristic = ValHeuristic::kRandom;
      options.random_var_ties = true;
      options.propagation = mode;
      options.seed = index + 1;
      options.max_nodes = 20'000;
      return model.solver->solve(options);
    };
    const auto inc = run(PropagationMode::kIncremental);
    const auto ref = run(PropagationMode::kScratch);
    EXPECT_EQ(inc.status, ref.status) << "instance " << index;
    EXPECT_EQ(inc.stats.nodes, ref.stats.nodes) << "instance " << index;
    EXPECT_EQ(inc.stats.failures, ref.stats.failures) << "instance " << index;
    EXPECT_EQ(inc.assignment, ref.assignment) << "instance " << index;
  }
}

// ------------------------------------------------- incremental fast paths

TEST(EventEngine, IncrementalRunsFarFewerSweepsThanEvents) {
  // On a counting-heavy model the incremental engine should resolve most
  // events in the advisor (O(1)) without queueing the propagator: the
  // propagation count stays well below the event count.
  gen::GeneratorOptions workload;
  workload.tasks = 10;
  workload.processors = 5;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 7;
  const gen::Instance inst = gen::generate_indexed(workload, 20090911, 3);
  const auto outcome =
      solve_csp2_generic(inst, PropagationMode::kIncremental, 1);
  ASSERT_GT(outcome.stats.events, 0);
  EXPECT_LT(outcome.stats.propagations, outcome.stats.events / 4)
      << "advisors are not filtering wakes";
}

// ------------------------------------------------------- selection heap

TEST(SelectionHeap, HeapExploresSameTreeAsScanOnCsp2) {
  // Deterministic tie-breaking: the lazy heap must reproduce the scan's
  // pick — minimum size/wdeg fraction, then minimum id — at every node,
  // across backtracking, wdeg bumps, and Luby restarts.
  gen::GeneratorOptions workload;
  workload.tasks = 10;
  workload.processors = 5;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 7;
  workload.order = gen::ParamOrder::kDFirst;

  for (const VarHeuristic heuristic :
       {VarHeuristic::kDomWdeg, VarHeuristic::kMinDomain}) {
    for (std::uint64_t index = 0; index < 6; ++index) {
      const gen::Instance inst = gen::generate_indexed(workload, 555, index);
      auto run = [&](SelectionMode mode) {
        const auto model = enc::build_csp2_generic(
            inst.tasks, rt::Platform::identical(inst.processors));
        SearchOptions options;
        options.var_heuristic = heuristic;
        options.val_heuristic = ValHeuristic::kMin;
        options.selection = mode;
        options.restart = RestartPolicy::kLuby;
        options.restart_scale = 16;
        options.max_nodes = 20'000;
        return model.solver->solve(options);
      };
      const auto heap = run(SelectionMode::kHeap);
      const auto scan = run(SelectionMode::kScan);
      EXPECT_EQ(heap.status, scan.status) << "instance " << index;
      EXPECT_EQ(heap.stats.nodes, scan.stats.nodes) << "instance " << index;
      EXPECT_EQ(heap.stats.failures, scan.stats.failures)
          << "instance " << index;
      EXPECT_EQ(heap.stats.restarts, scan.stats.restarts)
          << "instance " << index;
      EXPECT_EQ(heap.assignment, scan.assignment) << "instance " << index;
    }
  }
}

TEST(SelectionHeap, HeapMatchesScanVerdictWithRandomTies) {
  // Random tie-breaking draws from the same tie set but in a different
  // stream order, so trees may differ; exhaustive verdicts may not.
  gen::GeneratorOptions workload;
  workload.tasks = 4;
  workload.processors = 2;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 4;

  for (std::uint64_t index = 0; index < 6; ++index) {
    const gen::Instance inst = gen::generate_indexed(workload, 999, index);
    auto run = [&](SelectionMode mode) {
      const auto model = enc::build_csp2_generic(
          inst.tasks, rt::Platform::identical(inst.processors));
      SearchOptions options;
      options.var_heuristic = VarHeuristic::kDomWdeg;
      options.val_heuristic = ValHeuristic::kRandom;
      options.random_var_ties = true;
      options.selection = mode;
      options.seed = index + 7;
      return model.solver->solve(options);
    };
    const auto heap = run(SelectionMode::kHeap);
    const auto scan = run(SelectionMode::kScan);
    EXPECT_EQ(heap.status, scan.status) << "instance " << index;
  }
}

// -------------------------------------------------------------- nogoods

TEST(Nogoods, SameVerdictsAsPlainRestartSearchOnCsp2) {
  // Nogood replay prunes refuted prefixes but never solutions: on
  // exhaustively-decided instances the verdict must match the plain run.
  gen::GeneratorOptions workload;
  workload.tasks = 4;
  workload.processors = 2;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 4;

  std::int64_t recorded = 0;
  for (std::uint64_t index = 0; index < 8; ++index) {
    const gen::Instance inst = gen::generate_indexed(workload, 20090911,
                                                     index);
    auto run = [&](bool nogoods) {
      const auto model = enc::build_csp2_generic(
          inst.tasks, rt::Platform::identical(inst.processors));
      SearchOptions options;
      options.var_heuristic = VarHeuristic::kDomWdeg;
      options.val_heuristic = ValHeuristic::kRandom;
      options.random_var_ties = true;
      options.restart = RestartPolicy::kLuby;
      options.restart_scale = 4;
      options.seed = index + 1;
      options.nogoods = nogoods;
      return model.solver->solve(options);
    };
    const auto with = run(true);
    const auto without = run(false);
    ASSERT_TRUE(decided(with.status)) << "instance " << index;
    EXPECT_EQ(with.status, without.status) << "instance " << index;
    recorded += with.stats.nogoods_recorded;
  }
  EXPECT_GT(recorded, 0) << "workload produced no conflicts to record";
}

TEST(Nogoods, SameVerdictsAsPlainRestartSearchOnCsp1) {
  gen::GeneratorOptions workload;
  workload.tasks = 4;
  workload.processors = 2;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 4;

  for (std::uint64_t index = 0; index < 4; ++index) {
    const gen::Instance inst = gen::generate_indexed(workload, 4242, index);
    auto run = [&](bool nogoods) {
      const auto model = enc::build_csp1(
          inst.tasks, rt::Platform::identical(inst.processors));
      SearchOptions options;
      options.var_heuristic = VarHeuristic::kDomWdeg;
      options.val_heuristic = ValHeuristic::kRandom;
      options.random_var_ties = true;
      options.restart = RestartPolicy::kLuby;
      options.restart_scale = 8;
      options.seed = index + 3;
      options.nogoods = nogoods;
      return model.solver->solve(options);
    };
    const auto with = run(true);
    const auto without = run(false);
    ASSERT_TRUE(decided(with.status)) << "instance " << index;
    EXPECT_EQ(with.status, without.status) << "instance " << index;
  }
}

TEST(Nogoods, ShrinkKeepsVerdictsAndNeverCostsNodesOnCsp2) {
  // Conflict-analysis shrinking drops decisions the conflict is not
  // reachable from, so the recorded clauses are at least as strong as the
  // raw decision sets: on exhaustively-decided instances the verdicts must
  // match and the family-total node count must not grow.  Deterministic
  // heuristics so the comparison is tree-vs-tree, not draw-vs-draw.
  gen::GeneratorOptions workload;
  workload.tasks = 4;
  workload.processors = 2;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 4;

  std::int64_t nodes_on = 0;
  std::int64_t nodes_off = 0;
  std::int64_t before = 0;
  std::int64_t after = 0;
  for (std::uint64_t index = 0; index < 8; ++index) {
    const gen::Instance inst = gen::generate_indexed(workload, 20090911,
                                                     index);
    auto run = [&](bool shrink) {
      const auto model = enc::build_csp2_generic(
          inst.tasks, rt::Platform::identical(inst.processors));
      SearchOptions options;
      options.var_heuristic = VarHeuristic::kDomWdeg;
      options.val_heuristic = ValHeuristic::kMin;
      options.restart = RestartPolicy::kLuby;
      options.restart_scale = 4;
      options.nogoods = true;
      options.nogood_shrink = shrink;
      return model.solver->solve(options);
    };
    const auto shrunk = run(true);
    const auto raw = run(false);
    ASSERT_TRUE(decided(shrunk.status)) << "instance " << index;
    EXPECT_EQ(shrunk.status, raw.status) << "instance " << index;
    nodes_on += shrunk.stats.nodes;
    nodes_off += raw.stats.nodes;
    before += shrunk.stats.nogood_lits_before;
    after += shrunk.stats.nogood_lits_after;
    EXPECT_LE(shrunk.stats.nogood_lits_after,
              shrunk.stats.nogood_lits_before)
        << "instance " << index;
  }
  EXPECT_LE(nodes_on, nodes_off);
  EXPECT_GT(before, 0) << "workload produced no conflicts to shrink";
  EXPECT_LT(after, before) << "conflict analysis never dropped a decision";
}

TEST(Nogoods, ShrinkKeepsVerdictsUnderRandomizedSearchOnCsp2) {
  // Under the Choco-like randomized strategy the trees diverge (replay
  // changes domain sizes, hence tie sets), but exhaustive verdicts may
  // not: shrinking must never prune a solution.
  gen::GeneratorOptions workload;
  workload.tasks = 4;
  workload.processors = 2;
  workload.rule = gen::ProcessorRule::kFixed;
  workload.t_max = 4;

  for (std::uint64_t index = 0; index < 6; ++index) {
    const gen::Instance inst = gen::generate_indexed(workload, 777, index);
    auto run = [&](bool shrink) {
      const auto model = enc::build_csp2_generic(
          inst.tasks, rt::Platform::identical(inst.processors));
      SearchOptions options;
      options.var_heuristic = VarHeuristic::kDomWdeg;
      options.val_heuristic = ValHeuristic::kRandom;
      options.random_var_ties = true;
      options.restart = RestartPolicy::kLuby;
      options.restart_scale = 4;
      options.seed = index + 1;
      options.nogoods = true;
      options.nogood_shrink = shrink;
      return model.solver->solve(options);
    };
    const auto shrunk = run(true);
    const auto raw = run(false);
    ASSERT_TRUE(decided(shrunk.status)) << "instance " << index;
    EXPECT_EQ(shrunk.status, raw.status) << "instance " << index;
  }
}

TEST(Nogoods, PoolSharesRecordingsAcrossLanes) {
  // Two lanes solve the same UNSAT model sequentially through one pool:
  // lane 0 publishes at its restarts, lane 1 imports at its own.
  auto build = [](Solver& solver, std::vector<VarId>& vars) {
    for (int k = 0; k < 8; ++k) vars.push_back(solver.add_variable(0, 6));
    solver.add(make_all_different_except(vars, /*except=*/-9));
    solver.add(make_count_eq(vars, /*value=*/6, /*target=*/1));
  };
  NogoodPool pool;
  auto run = [&](std::int32_t lane) {
    Solver solver;
    std::vector<VarId> vars;
    build(solver, vars);
    SearchOptions options;
    options.val_heuristic = ValHeuristic::kRandom;
    options.random_var_ties = true;
    options.restart = RestartPolicy::kLuby;
    options.restart_scale = 2;
    options.seed = 17 + static_cast<std::uint64_t>(lane);
    options.nogoods = true;
    options.nogood_pool = &pool;
    options.nogood_lane = lane;
    return solver.solve(options);
  };
  const auto first = run(0);
  EXPECT_EQ(first.status, SolveStatus::kUnsat);
  EXPECT_GT(first.stats.nogoods_recorded, 0);
  EXPECT_GT(pool.size(), 0u);
  const auto second = run(1);
  EXPECT_EQ(second.status, SolveStatus::kUnsat);
  EXPECT_GT(second.stats.nogoods_imported, 0)
      << "lane 1 restarted without adopting lane 0's nogoods";
}

// ------------------------------------------------- symmetry-chain finesse

TEST(SymmetryChainFinesse, FixedMiddleForcesAscendingNeighbours) {
  // Chain over {v0..v3}, values 0..3, idle = 3.  Fixing v1 = 1 forces
  // v0 = 0 (only key below 1) and v3 = idle (no key above v2's minimum 2).
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 4; ++k) vars.push_back(solver.add_variable(0, 3));
  solver.add(make_symmetry_chain(vars, /*idle=*/3));
  ASSERT_TRUE(solver.post_fix(vars[1], 1));
  SearchOptions options;
  options.var_heuristic = VarHeuristic::kLex;
  const auto outcome = solver.solve(options);
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment, (std::vector<Value>{0, 1, 2, 3}));
}

TEST(SymmetryChainFinesse, PairWorklistMatchesScratchOnChainHeavyModel) {
  // A deep chain plus counting rules under randomized restarts: the dirty
  // pairs survive backtracks and restarts as stale marks, and the worklist
  // fixpoint must equal the full-sweep fixpoint at every node.
  auto run = [&](PropagationMode mode) {
    Solver solver;
    std::vector<VarId> vars;
    for (int k = 0; k < 10; ++k) vars.push_back(solver.add_variable(0, 10));
    solver.add(make_symmetry_chain(vars, /*idle=*/10));
    solver.add(make_count_eq(vars, /*value=*/2, /*target=*/1));
    solver.add(make_count_eq(vars, /*value=*/5, /*target=*/2));
    solver.add(make_all_different_except(vars, /*except=*/10));
    SearchOptions options;
    options.var_heuristic = VarHeuristic::kDomWdeg;
    options.val_heuristic = ValHeuristic::kRandom;
    options.random_var_ties = true;
    options.restart = RestartPolicy::kLuby;
    options.restart_scale = 8;
    options.propagation = mode;
    options.seed = 31;
    options.max_nodes = 20'000;
    return solver.solve(options);
  };
  const auto inc = run(PropagationMode::kIncremental);
  const auto ref = run(PropagationMode::kScratch);
  EXPECT_EQ(inc.status, ref.status);
  EXPECT_EQ(inc.stats.nodes, ref.stats.nodes);
  EXPECT_EQ(inc.stats.failures, ref.stats.failures);
  EXPECT_EQ(inc.stats.restarts, ref.stats.restarts);
  EXPECT_EQ(inc.assignment, ref.assignment);
}

TEST(EventEngine, ScratchModeSolvesAndMatchesStatusOnUnsat) {
  // Pigeonhole: 3 variables, 2 values, pairwise distinct — UNSAT in every
  // mode, proving the reference modes also terminate on proofs.
  for (const PropagationMode mode :
       {PropagationMode::kIncremental, PropagationMode::kScratch,
        PropagationMode::kLegacy}) {
    Solver solver;
    std::vector<VarId> pigeons;
    for (int k = 0; k < 3; ++k) pigeons.push_back(solver.add_variable(0, 1));
    solver.add(make_all_different_except(pigeons, /*except=*/-7));
    SearchOptions options;
    options.propagation = mode;
    EXPECT_EQ(solver.solve(options).status, SolveStatus::kUnsat);
  }
}

}  // namespace
}  // namespace mgrts::csp
