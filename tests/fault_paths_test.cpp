// Direct coverage of the ResourceError guard paths and their graceful
// degradation through the pipeline (DESIGN.md §12): every guard must
// surface as a sound kUnknown/kMemoryLimit report with FailureCause
// provenance, never as an exception to the caller.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/solve.hpp"
#include "rt/jobs.hpp"
#include "rt/schedule.hpp"
#include "support/error.hpp"
#include "support/fault.hpp"
#include "testing.hpp"

namespace mgrts {
namespace {

// RAII disarm so a failing assertion cannot leak an armed injector into
// the rest of the suite.
struct InjectorGuard {
  explicit InjectorGuard(const support::FaultPlan& plan) {
    support::FaultInjector::arm(plan);
  }
  ~InjectorGuard() { support::FaultInjector::disarm(); }
};

support::FaultPlan always(support::FaultSite site) {
  support::FaultPlan plan;
  plan.seed = 1;
  plan.rate = 1.0;
  plan.sites = support::FaultPlan::mask(site);
  return plan;
}

// ------------------------------------------------- raw guard behavior

TEST(FaultPaths, JobTableSlotBudgetThrowsResourceError) {
  const rt::TaskSet ts = testing::example1();
  EXPECT_NO_THROW(rt::JobTable{ts});
  EXPECT_THROW(rt::JobTable(ts, /*max_total_slots=*/1), ResourceError);
}

TEST(FaultPaths, ScheduleTableGuardThrowsResourceError) {
  EXPECT_NO_THROW(rt::Schedule(12, 2));
  // T*m past the 2^31-cell guard must refuse to materialize.
  EXPECT_THROW(rt::Schedule(std::int64_t{1} << 40, 4), ResourceError);
}

// -------------------------------- degradation through solve_instance

TEST(FaultPaths, InjectedJobTableFaultDegradesFlowOracleBackend) {
  InjectorGuard guard(always(support::FaultSite::kJobTable));

  core::SolveConfig config;
  config.method = core::Method::kFlowOracle;
  config.pipeline = core::PipelineOptions::none();
  const core::SolveReport report = core::solve_instance(
      testing::example1(), testing::example1_platform(), config);

  EXPECT_EQ(report.verdict, core::Verdict::kUnknown);
  EXPECT_EQ(report.cause, core::FailureCause::kFaultInjected);
  EXPECT_FALSE(report.detail.empty());
  EXPECT_GE(
      support::FaultInjector::active()->fired(support::FaultSite::kJobTable),
      1);
}

TEST(FaultPaths, InjectedScheduleTableFaultDegradesFlowOracleBackend) {
  InjectorGuard guard(always(support::FaultSite::kScheduleTable));

  // example1 is feasible, so the oracle builds a witness Schedule — the
  // guarded allocation the injected fault shadows.
  core::SolveConfig config;
  config.method = core::Method::kFlowOracle;
  config.pipeline = core::PipelineOptions::none();
  const core::SolveReport report = core::solve_instance(
      testing::example1(), testing::example1_platform(), config);

  EXPECT_EQ(report.verdict, core::Verdict::kUnknown);
  EXPECT_EQ(report.cause, core::FailureCause::kFaultInjected);
  EXPECT_GE(support::FaultInjector::active()->fired(
                support::FaultSite::kScheduleTable),
            1);
}

TEST(FaultPaths, FlowOracleStageFallsBackWhenJobTableFaults) {
  InjectorGuard guard(always(support::FaultSite::kJobTable));

  // Through the full pipeline the flow-oracle *stage* absorbs the fault:
  // either the density fallback still proves feasibility or the stage
  // hands kUnknown to the backend — the solve itself must stay decisive
  // here because the CSP2 backend needs no job table.
  core::SolveConfig config;
  config.method = core::Method::kCsp2Dedicated;
  config.pipeline = core::PipelineOptions::full();
  const core::SolveReport report = core::solve_instance(
      testing::example1(), testing::example1_platform(), config);

  EXPECT_EQ(report.verdict, core::Verdict::kFeasible);
  EXPECT_EQ(report.cause, core::FailureCause::kNone);
}

TEST(FaultPaths, NaturalVariableBudgetReportsMemoryCause) {
  core::SolveConfig config;
  config.method = core::Method::kCsp1Generic;
  config.pipeline = core::PipelineOptions::none();
  config.limits.max_variables = 1;  // Choco-OOM stand-in
  const core::SolveReport report = core::solve_instance(
      testing::example1(), testing::example1_platform(), config);

  EXPECT_EQ(report.verdict, core::Verdict::kMemoryLimit);
  EXPECT_EQ(report.cause, core::FailureCause::kMemory);
}

TEST(FaultPaths, InjectedVariableBudgetFaultCarriesInjectedCause) {
  InjectorGuard guard(always(support::FaultSite::kCspVarBudget));

  // Same guard as above, tripped by the injector instead of the budget:
  // the cause must say so (kFaultInjected, not kMemory) while the
  // degradation path stays identical — contained, no exception.
  core::SolveConfig config;
  config.method = core::Method::kCsp1Generic;
  config.pipeline = core::PipelineOptions::none();
  const core::SolveReport report = core::solve_instance(
      testing::example1(), testing::example1_platform(), config);

  EXPECT_EQ(report.verdict, core::Verdict::kUnknown);
  EXPECT_EQ(report.cause, core::FailureCause::kFaultInjected);
  EXPECT_GE(support::FaultInjector::active()->fired(
                support::FaultSite::kCspVarBudget),
            1);
}

}  // namespace
}  // namespace mgrts
