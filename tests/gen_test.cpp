#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace mgrts::gen {
namespace {

TEST(Generator, RespectsStructuralConstraints) {
  // §VII-A: 0 < C <= D <= T <= Tmax for every sampling order.
  for (const ParamOrder order :
       {ParamOrder::kDFirst, ParamOrder::kCdt, ParamOrder::kTdc}) {
    support::Rng rng(1);
    GeneratorOptions options;
    options.tasks = 8;
    options.t_max = 9;
    options.order = order;
    for (int k = 0; k < 200; ++k) {
      const Instance inst = generate(options, rng);
      ASSERT_EQ(inst.tasks.size(), 8);
      for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
        const auto& p = inst.tasks[i].params;
        ASSERT_GE(p.wcet, 1);
        ASSERT_LE(p.wcet, p.deadline);
        ASSERT_LE(p.deadline, p.period);
        ASSERT_LE(p.period, options.t_max);
        ASSERT_EQ(p.offset, 0);
      }
    }
  }
}

TEST(Generator, OffsetsWithinPeriod) {
  support::Rng rng(2);
  GeneratorOptions options;
  options.tasks = 6;
  options.t_max = 8;
  options.with_offsets = true;
  bool saw_nonzero = false;
  for (int k = 0; k < 100; ++k) {
    const Instance inst = generate(options, rng);
    for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
      const auto& p = inst.tasks[i].params;
      ASSERT_GE(p.offset, 0);
      ASSERT_LT(p.offset, p.period);
      saw_nonzero = saw_nonzero || p.offset > 0;
    }
  }
  EXPECT_TRUE(saw_nonzero);
}

TEST(Generator, FixedProcessorRule) {
  support::Rng rng(3);
  GeneratorOptions options;
  options.tasks = 5;
  options.processors = 3;
  options.rule = ProcessorRule::kFixed;
  EXPECT_EQ(generate(options, rng).processors, 3);
}

TEST(Generator, UniformProcessorRuleInRange) {
  support::Rng rng(4);
  GeneratorOptions options;
  options.tasks = 6;
  options.rule = ProcessorRule::kUniform;
  for (int k = 0; k < 200; ++k) {
    const Instance inst = generate(options, rng);
    ASSERT_GE(inst.processors, 1);
    ASSERT_LE(inst.processors, 5);  // 1..n-1
  }
}

TEST(Generator, MinCapacityRuleMatchesCeilU) {
  support::Rng rng(5);
  GeneratorOptions options;
  options.tasks = 10;
  options.rule = ProcessorRule::kMinCapacity;
  options.t_max = 15;
  for (int k = 0; k < 100; ++k) {
    const Instance inst = generate(options, rng);
    EXPECT_EQ(inst.processors, inst.tasks.min_processors_bound());
    // By construction the instance passes the r <= 1 necessary condition.
    EXPECT_FALSE(inst.tasks.exceeds_capacity(inst.processors));
  }
}

TEST(Generator, IndexedStreamsReproducible) {
  GeneratorOptions options;
  options.tasks = 7;
  options.t_max = 7;
  const Instance a = generate_indexed(options, 42, 17);
  const Instance b = generate_indexed(options, 42, 17);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (rt::TaskId i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].params, b.tasks[i].params);
  }
  EXPECT_EQ(a.processors, b.processors);
}

TEST(Generator, IndexedStreamsIndependentOfIndexOrder) {
  GeneratorOptions options;
  options.tasks = 5;
  options.t_max = 6;
  // Drawing index 3 must not depend on whether 0..2 were drawn before.
  const Instance direct = generate_indexed(options, 9, 3);
  static_cast<void>(generate_indexed(options, 9, 0));
  static_cast<void>(generate_indexed(options, 9, 1));
  const Instance after = generate_indexed(options, 9, 3);
  for (rt::TaskId i = 0; i < direct.tasks.size(); ++i) {
    EXPECT_EQ(direct.tasks[i].params, after.tasks[i].params);
  }
}

TEST(Generator, DifferentIndicesDiffer) {
  GeneratorOptions options;
  options.tasks = 8;
  options.t_max = 12;
  const Instance a = generate_indexed(options, 1, 0);
  const Instance b = generate_indexed(options, 1, 1);
  bool differ = false;
  for (rt::TaskId i = 0; i < a.tasks.size(); ++i) {
    differ = differ || !(a.tasks[i].params == b.tasks[i].params);
  }
  EXPECT_TRUE(differ);
}

TEST(Generator, ParamOrderShapesDistributions) {
  // §VII-A: C->D->T favours large periods, T->D->C favours short WCETs.
  // Check the means over a large sample.
  auto mean_c_and_t = [](ParamOrder order) {
    support::Rng rng(123);
    GeneratorOptions options;
    options.tasks = 4;
    options.t_max = 20;
    options.order = order;
    double sum_c = 0.0;
    double sum_t = 0.0;
    int count = 0;
    for (int k = 0; k < 600; ++k) {
      const Instance inst = generate(options, rng);
      for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
        sum_c += static_cast<double>(inst.tasks[i].wcet());
        sum_t += static_cast<double>(inst.tasks[i].period());
        ++count;
      }
    }
    return std::pair{sum_c / count, sum_t / count};
  };
  const auto [c_cdt, t_cdt] = mean_c_and_t(ParamOrder::kCdt);
  const auto [c_tdc, t_tdc] = mean_c_and_t(ParamOrder::kTdc);
  const auto [c_d, t_d] = mean_c_and_t(ParamOrder::kDFirst);
  EXPECT_GT(t_cdt, t_tdc);  // C->D->T has larger periods
  EXPECT_LT(c_tdc, c_cdt);  // T->D->C has shorter WCETs
  // The paper calls D-first "intermediate".
  EXPECT_GT(t_d, t_tdc);
  EXPECT_LT(t_d, t_cdt);
}

TEST(Generator, ValidatesOptions) {
  support::Rng rng(1);
  GeneratorOptions options;
  options.tasks = 2;  // n > 2 required
  EXPECT_THROW(static_cast<void>(generate(options, rng)), ValidationError);
  options.tasks = 5;
  options.t_max = 1;
  EXPECT_THROW(static_cast<void>(generate(options, rng)), ValidationError);
  options.t_max = 5;
  options.processors = 0;
  options.rule = ProcessorRule::kFixed;
  EXPECT_THROW(static_cast<void>(generate(options, rng)), ValidationError);
}

TEST(ControlledGenerator, HitsTargetUtilization) {
  support::Rng rng(31);
  ControlledOptions options;
  options.tasks = 12;
  options.processors = 4;
  options.t_max = 50;  // fine-grained periods keep rounding error small
  options.target_ratio = 0.75;
  double total_ratio = 0;
  const int draws = 60;
  for (int k = 0; k < draws; ++k) {
    const Instance inst = generate_controlled(options, rng);
    total_ratio += inst.tasks.utilization_ratio(inst.processors);
    for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
      const auto& p = inst.tasks[i].params;
      ASSERT_GE(p.wcet, 1);
      ASSERT_LE(p.wcet, p.deadline);
      ASSERT_LE(p.deadline, p.period);
      ASSERT_LE(p.period, options.t_max);
    }
  }
  EXPECT_NEAR(total_ratio / draws, 0.75, 0.08);
}

TEST(ControlledGenerator, ImplicitDeadlines) {
  support::Rng rng(32);
  ControlledOptions options;
  options.tasks = 6;
  options.implicit_deadlines = true;
  const Instance inst = generate_controlled(options, rng);
  for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
    EXPECT_EQ(inst.tasks[i].deadline(), inst.tasks[i].period());
  }
}

TEST(ControlledGenerator, OffsetsSampled) {
  support::Rng rng(33);
  ControlledOptions options;
  options.tasks = 8;
  options.t_max = 30;
  options.with_offsets = true;
  bool nonzero = false;
  for (int k = 0; k < 20; ++k) {
    const Instance inst = generate_controlled(options, rng);
    for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
      ASSERT_LT(inst.tasks[i].offset(), inst.tasks[i].period());
      nonzero = nonzero || inst.tasks[i].offset() > 0;
    }
  }
  EXPECT_TRUE(nonzero);
}

TEST(ControlledGenerator, ValidatesOptions) {
  support::Rng rng(34);
  ControlledOptions options;
  options.target_ratio = 0.0;
  EXPECT_THROW(static_cast<void>(generate_controlled(options, rng)),
               ValidationError);
  options.target_ratio = 1.5;
  EXPECT_THROW(static_cast<void>(generate_controlled(options, rng)),
               ValidationError);
  options.target_ratio = 1.0;
  options.tasks = 2;
  options.processors = 4;  // needs u_i > 1 on average
  EXPECT_THROW(static_cast<void>(generate_controlled(options, rng)),
               ValidationError);
}

TEST(ControlledGenerator, SingleTaskDegenerate) {
  support::Rng rng(35);
  ControlledOptions options;
  options.tasks = 1;
  options.processors = 1;
  options.target_ratio = 0.5;
  const Instance inst = generate_controlled(options, rng);
  EXPECT_EQ(inst.tasks.size(), 1);
}

TEST(Generator, ToStringNames) {
  EXPECT_STREQ(to_string(ParamOrder::kDFirst), "D-first");
  EXPECT_STREQ(to_string(ParamOrder::kCdt), "C->D->T");
  EXPECT_STREQ(to_string(ParamOrder::kTdc), "T->D->C");
}

}  // namespace
}  // namespace mgrts::gen
