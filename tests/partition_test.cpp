#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "csp2/csp2.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/validate.hpp"
#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::partition {
namespace {

using mgrts::testing::example1;
using rt::Platform;
using rt::TaskSet;

TEST(Partition, PlacesLightLoad) {
  const TaskSet ts = mgrts::testing::light3();
  const Result result = partition_tasks(ts, 2);
  ASSERT_TRUE(result.found);
  ASSERT_TRUE(result.schedule.has_value());
  EXPECT_TRUE(
      rt::is_valid_schedule(ts, Platform::identical(2), *result.schedule));
  std::size_t placed = 0;
  for (const auto& bin : result.assignment) placed += bin.size();
  EXPECT_EQ(placed, 3u);
}

TEST(Partition, ScheduleKeepsTasksOnTheirProcessor) {
  const TaskSet ts = mgrts::testing::light3();
  const Result result = partition_tasks(ts, 2);
  ASSERT_TRUE(result.found);
  std::vector<rt::ProcId> home(static_cast<std::size_t>(ts.size()), -1);
  for (rt::ProcId j = 0; j < 2; ++j) {
    for (const rt::TaskId i : result.assignment[static_cast<std::size_t>(j)]) {
      home[static_cast<std::size_t>(i)] = j;
    }
  }
  for (rt::Time t = 0; t < result.schedule->hyperperiod(); ++t) {
    for (rt::ProcId j = 0; j < 2; ++j) {
      const rt::TaskId i = result.schedule->at(t, j);
      if (i != rt::kIdle) {
        EXPECT_EQ(home[static_cast<std::size_t>(i)], j);
      }
    }
  }
}

TEST(Partition, GlobalBeatsPartitioned) {
  // Three tasks of utilization 3/5 on two processors: any partition puts
  // two of them on one processor (U = 1.2 > 1 there), so every heuristic
  // fails — yet migration makes the instance feasible (oracle + CSP2).
  const TaskSet ts = TaskSet::from_params(
      {{0, 3, 5, 5}, {0, 3, 5, 5}, {0, 3, 5, 5}});
  const Platform p = Platform::identical(2);
  EXPECT_TRUE(flow::is_feasible(ts, p));
  EXPECT_EQ(csp2::solve(ts, p).status, csp2::Status::kFeasible);

  for (const FitHeuristic fit :
       {FitHeuristic::kFirstFit, FitHeuristic::kBestFit,
        FitHeuristic::kWorstFit}) {
    Options options;
    options.fit = fit;
    const Result result = partition_tasks(ts, 2, options);
    EXPECT_FALSE(result.found) << to_string(fit);
    EXPECT_GE(result.failed_task, 0);
  }
}

TEST(Partition, FoundImpliesGloballyFeasible) {
  // Partitioned-schedulable is a *sufficient* condition for feasibility.
  int found = 0;
  for (std::uint64_t k = 0; k < 60; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 5;
    gopt.processors = 3;
    gopt.t_max = 6;
    gopt.with_offsets = (k % 2 == 0);
    const auto inst = gen::generate_indexed(gopt, 515, k);
    const Result result = partition_tasks(inst.tasks, inst.processors);
    if (!result.found) continue;
    ++found;
    const Platform p = Platform::identical(inst.processors);
    ASSERT_TRUE(result.schedule.has_value());
    EXPECT_TRUE(rt::is_valid_schedule(inst.tasks, p, *result.schedule))
        << "instance " << k;
    EXPECT_TRUE(flow::is_feasible(inst.tasks, p)) << "instance " << k;
  }
  EXPECT_GT(found, 10);
}

TEST(Partition, HeuristicsDifferInPackingsNotSoundness) {
  for (std::uint64_t k = 0; k < 30; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 6;
    gopt.processors = 3;
    gopt.t_max = 5;
    const auto inst = gen::generate_indexed(gopt, 616, k);
    for (const SortOrder sort :
         {SortOrder::kInput, SortOrder::kDecreasingUtilization,
          SortOrder::kDecreasingDensity}) {
      Options options;
      options.sort = sort;
      const Result result = partition_tasks(inst.tasks, inst.processors,
                                            options);
      if (result.found) {
        EXPECT_TRUE(rt::is_valid_schedule(
            inst.tasks, Platform::identical(inst.processors),
            *result.schedule))
            << "instance " << k << " sort " << to_string(sort);
      }
    }
  }
}

TEST(Partition, MixedHyperperiodsTileCorrectly) {
  // Bins with different local hyperperiods must tile into the global T.
  const TaskSet ts = TaskSet::from_params({{0, 1, 2, 2}, {0, 2, 3, 3}});
  const Result result = partition_tasks(ts, 2);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.schedule->hyperperiod(), 6);
  EXPECT_TRUE(
      rt::is_valid_schedule(ts, Platform::identical(2), *result.schedule));
}

TEST(Partition, CountsFeasibilityChecks) {
  const Result result = partition_tasks(mgrts::testing::light3(), 2);
  EXPECT_GT(result.feasibility_checks, 0);
}

TEST(Partition, SingleProcessorDegeneratesToUniprocessorTest) {
  const TaskSet feasible = TaskSet::from_params({{0, 1, 2, 2}, {0, 1, 3, 3}});
  EXPECT_TRUE(partition_tasks(feasible, 1).found);
  EXPECT_FALSE(partition_tasks(mgrts::testing::overloaded1(), 1).found);
}

TEST(Partition, RejectsArbitraryDeadlines) {
  const TaskSet ts =
      TaskSet::from_params({{0, 1, 5, 4}}, rt::DeadlineModel::kArbitrary);
  EXPECT_THROW(static_cast<void>(partition_tasks(ts, 2)), ValidationError);
}

TEST(Partition, NameStrings) {
  EXPECT_STREQ(to_string(FitHeuristic::kFirstFit), "first-fit");
  EXPECT_STREQ(to_string(SortOrder::kDecreasingDensity), "density-desc");
}

}  // namespace
}  // namespace mgrts::partition
