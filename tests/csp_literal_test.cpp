// The literal layer (DESIGN.md §11): negation, truth masks, implication,
// entailment/impossibility against Domain64 (including holey domains), and
// nogood-level subsumption across ==/!=/bound literals.
#include <gtest/gtest.h>

#include "csp/domain.hpp"
#include "csp/literal.hpp"

namespace mgrts::csp {
namespace {

TEST(Literal, NegationIsAnInvolutionOnEqNe) {
  const Lit eq = Lit::eq(3, 5);
  EXPECT_EQ(negate(eq), Lit::ne(3, 5));
  EXPECT_EQ(negate(negate(eq)), eq);
}

TEST(Literal, NegationFlipsBoundsInclusively) {
  EXPECT_EQ(negate(Lit::le(0, 4)), Lit::ge(0, 5));
  EXPECT_EQ(negate(Lit::ge(0, 4)), Lit::le(0, 3));
  // ¬¬(x <= 4) round-trips.
  EXPECT_EQ(negate(negate(Lit::le(0, 4))), Lit::le(0, 4));
}

TEST(Literal, TruthMasksClampToTheWindow) {
  // Window based at 10: bit i stands for value 10 + i.
  EXPECT_EQ(truth_mask(Lit::eq(0, 12), 10), std::uint64_t{1} << 2);
  EXPECT_EQ(truth_mask(Lit::eq(0, 9), 10), 0u);   // below the window
  EXPECT_EQ(truth_mask(Lit::eq(0, 100), 10), 0u);  // above the window
  EXPECT_EQ(truth_mask(Lit::ne(0, 12), 10), ~(std::uint64_t{1} << 2));
  EXPECT_EQ(truth_mask(Lit::le(0, 12), 10), 0b111u);
  EXPECT_EQ(truth_mask(Lit::le(0, 9), 10), 0u);
  EXPECT_EQ(truth_mask(Lit::le(0, 200), 10), ~std::uint64_t{0});
  EXPECT_EQ(truth_mask(Lit::ge(0, 12), 10), ~std::uint64_t{0b11});
  EXPECT_EQ(truth_mask(Lit::ge(0, 10), 10), ~std::uint64_t{0});
  EXPECT_EQ(truth_mask(Lit::ge(0, 200), 10), 0u);
}

TEST(Literal, ImpliesTableOverOneVariable) {
  // == implies everything its value satisfies.
  EXPECT_TRUE(implies(Lit::eq(0, 3), Lit::le(0, 3)));
  EXPECT_TRUE(implies(Lit::eq(0, 3), Lit::ge(0, 3)));
  EXPECT_TRUE(implies(Lit::eq(0, 3), Lit::ne(0, 4)));
  EXPECT_FALSE(implies(Lit::eq(0, 3), Lit::ne(0, 3)));
  EXPECT_FALSE(implies(Lit::eq(0, 3), Lit::le(0, 2)));
  // != only implies itself (co-finite truth set).
  EXPECT_TRUE(implies(Lit::ne(0, 3), Lit::ne(0, 3)));
  EXPECT_FALSE(implies(Lit::ne(0, 3), Lit::ne(0, 4)));
  EXPECT_FALSE(implies(Lit::ne(0, 3), Lit::le(0, 100)));
  // Bounds imply looser bounds and the disequalities beyond them.
  EXPECT_TRUE(implies(Lit::le(0, 2), Lit::le(0, 5)));
  EXPECT_FALSE(implies(Lit::le(0, 5), Lit::le(0, 2)));
  EXPECT_TRUE(implies(Lit::le(0, 2), Lit::ne(0, 3)));
  EXPECT_FALSE(implies(Lit::le(0, 2), Lit::ne(0, 2)));
  EXPECT_TRUE(implies(Lit::ge(0, 4), Lit::ge(0, 1)));
  EXPECT_TRUE(implies(Lit::ge(0, 4), Lit::ne(0, 0)));
  EXPECT_FALSE(implies(Lit::ge(0, 4), Lit::ne(0, 4)));
  EXPECT_FALSE(implies(Lit::ge(0, 4), Lit::le(0, 100)));
  // Never across variables.
  EXPECT_FALSE(implies(Lit::eq(0, 3), Lit::le(1, 3)));
}

TEST(Literal, EntailmentAgainstDomains) {
  Domain64 d(0, 5);  // {0..5}
  EXPECT_FALSE(entailed(d, Lit::le(0, 3)));
  EXPECT_FALSE(impossible(d, Lit::le(0, 3)));
  d.remove(4);
  d.remove(5);
  EXPECT_TRUE(entailed(d, Lit::le(0, 3)));  // all remaining values <= 3
  EXPECT_TRUE(entailed(d, Lit::ne(0, 4)));
  EXPECT_TRUE(impossible(d, Lit::ge(0, 4)));
  EXPECT_FALSE(entailed(d, Lit::eq(0, 2)));
  d.remove(0);
  d.remove(1);
  d.remove(3);
  EXPECT_TRUE(d.is_fixed());
  EXPECT_TRUE(entailed(d, Lit::eq(0, 2)));
  EXPECT_TRUE(impossible(d, Lit::ne(0, 2)));
}

TEST(Literal, EntailmentSeesHoleyDomains) {
  // {0, 5}: a bound literal between the holes is neither entailed nor
  // impossible; != of a hole value is entailed.
  Domain64 d(0, 5);
  for (Value v = 1; v <= 4; ++v) d.remove(v);
  EXPECT_TRUE(entailed(d, Lit::ne(0, 3)));
  EXPECT_FALSE(entailed(d, Lit::le(0, 3)));
  EXPECT_FALSE(impossible(d, Lit::le(0, 3)));
  EXPECT_FALSE(entailed(d, Lit::ge(0, 1)));
}

TEST(Literal, NogoodSubsumptionIsLiteralImplicationCover) {
  // {x==1, y==1} forbids a superset of what {x==1, y==1, z==1} forbids.
  const Lit shorter[] = {Lit::eq(0, 1), Lit::eq(1, 1)};
  const Lit longer[] = {Lit::eq(0, 1), Lit::eq(1, 1), Lit::eq(2, 1)};
  EXPECT_TRUE(nogood_subsumes(shorter, 2, longer, 3));
  EXPECT_FALSE(nogood_subsumes(longer, 3, shorter, 2));
  // Weaker literals subsume stronger ones on the same variables: x>=1 is
  // implied by x>=2, so {x>=1, y==1} covers every state {x>=2, y==1} does.
  const Lit loose[] = {Lit::ge(0, 1), Lit::eq(1, 1)};
  const Lit tight[] = {Lit::ge(0, 2), Lit::eq(1, 1)};
  EXPECT_TRUE(nogood_subsumes(loose, 2, tight, 2));
  EXPECT_FALSE(nogood_subsumes(tight, 2, loose, 2));
  // A bound conjunct is covered by an == conjunct it contains.
  const Lit bound[] = {Lit::le(0, 3)};
  const Lit fixed[] = {Lit::eq(0, 2)};
  EXPECT_TRUE(nogood_subsumes(bound, 1, fixed, 1));
  EXPECT_FALSE(nogood_subsumes(fixed, 1, bound, 1));
  // Different variables never cover each other.
  const Lit other[] = {Lit::eq(3, 1)};
  EXPECT_FALSE(nogood_subsumes(other, 1, shorter, 2));
}

}  // namespace
}  // namespace mgrts::csp
