// Unit tests for individual propagators, driven through tiny Solver models
// so that pruning happens exactly as in production (queue + trail).
#include "csp/propagators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "csp/solver.hpp"

namespace mgrts::csp {
namespace {

/// Enumerates all solutions of a small model by repeatedly solving with an
/// added "block this assignment" constraint is overkill; instead just check
/// solution counts by brute force over a fresh solver per candidate.
/// Helper: returns true iff the model with the given pre-assignments is SAT.
template <typename Builder>
bool sat_with(Builder&& build, const std::vector<std::pair<int, Value>>& pins) {
  Solver solver;
  std::vector<VarId> vars = build(solver);
  for (const auto& [idx, value] : pins) {
    if (!solver.post_fix(vars[static_cast<std::size_t>(idx)], value)) {
      return false;
    }
  }
  return solver.solve({}).status == SolveStatus::kSat;
}

// ----------------------------------------------------------- AtMostOneTrue

TEST(AtMostOneTrue, AllowsZeroOrOne) {
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(0, 1), s.add_variable(0, 1),
                            s.add_variable(0, 1)};
    s.add(make_at_most_one(vars));
    return vars;
  };
  EXPECT_TRUE(sat_with(build, {}));
  EXPECT_TRUE(sat_with(build, {{0, 1}}));
  EXPECT_TRUE(sat_with(build, {{0, 0}, {1, 0}, {2, 0}}));
}

TEST(AtMostOneTrue, RejectsTwoTrue) {
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(0, 1), s.add_variable(0, 1),
                            s.add_variable(0, 1)};
    s.add(make_at_most_one(vars));
    return vars;
  };
  EXPECT_FALSE(sat_with(build, {{0, 1}, {2, 1}}));
}

TEST(AtMostOneTrue, PropagatesZerosFromOne) {
  Solver solver;
  std::vector<VarId> vars{solver.add_variable(0, 1), solver.add_variable(0, 1),
                          solver.add_variable(0, 1)};
  solver.add(make_at_most_one(vars));
  ASSERT_TRUE(solver.post_fix(vars[1], 1));
  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[0], 0);
  EXPECT_EQ(outcome.assignment[2], 0);
}

// --------------------------------------------------------- LinearBoolSumEq

TEST(LinearBoolSumEq, ExactCount) {
  auto build = [](Solver& s) {
    std::vector<VarId> vars;
    for (int k = 0; k < 5; ++k) vars.push_back(s.add_variable(0, 1));
    s.add(make_sum_eq(vars, 2));
    return vars;
  };
  EXPECT_TRUE(sat_with(build, {}));
  EXPECT_TRUE(sat_with(build, {{0, 1}, {1, 1}, {2, 0}, {3, 0}, {4, 0}}));
  EXPECT_FALSE(sat_with(build, {{0, 1}, {1, 1}, {2, 1}}));          // > 2
  EXPECT_FALSE(sat_with(build, {{0, 0}, {1, 0}, {2, 0}, {3, 0}}));  // < 2
}

TEST(LinearBoolSumEq, WeightedReachability) {
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(0, 1), s.add_variable(0, 1)};
    s.add(make_weighted_sum_eq(vars, {2, 3}, 3));
    return vars;
  };
  // Only x1=0, x2=1 reaches exactly 3.
  EXPECT_TRUE(sat_with(build, {}));
  EXPECT_FALSE(sat_with(build, {{0, 1}}));  // 2 alone can't reach 3: 2 or 5
  EXPECT_TRUE(sat_with(build, {{1, 1}}));
}

TEST(LinearBoolSumEq, WeightedParityGap) {
  // Weights {2, 2}, target 3: unreachable.
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(0, 1), s.add_variable(0, 1)};
    s.add(make_weighted_sum_eq(vars, {2, 2}, 3));
    return vars;
  };
  EXPECT_FALSE(sat_with(build, {}));
}

TEST(LinearBoolSumEq, ForcesRemainderThroughPropagation) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 3; ++k) vars.push_back(solver.add_variable(0, 1));
  solver.add(make_sum_eq(vars, 3));
  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  // Propagation alone must fix everything: exactly one node explored at
  // most (the solve loop may even find all variables fixed pre-search).
  EXPECT_LE(outcome.stats.nodes, 1);
}

TEST(LinearBoolSumEq, ZeroTargetForcesAllZero) {
  Solver solver;
  std::vector<VarId> vars;
  for (int k = 0; k < 4; ++k) vars.push_back(solver.add_variable(0, 1));
  solver.add(make_sum_eq(vars, 0));
  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  for (const Value v : outcome.assignment) EXPECT_EQ(v, 0);
}

// ------------------------------------------------------------------ CountEq

TEST(CountEq, ExactOccurrences) {
  auto build = [](Solver& s) {
    std::vector<VarId> vars;
    for (int k = 0; k < 4; ++k) vars.push_back(s.add_variable(0, 2));
    s.add(make_count_eq(vars, 1, 2));
    return vars;
  };
  EXPECT_TRUE(sat_with(build, {}));
  EXPECT_FALSE(sat_with(build, {{0, 1}, {1, 1}, {2, 1}}));
  EXPECT_TRUE(sat_with(build, {{0, 1}, {1, 1}, {2, 0}, {3, 2}}));
  EXPECT_FALSE(sat_with(build, {{0, 0}, {1, 0}, {2, 2}}));  // at most 1 left
}

TEST(CountEq, UbEqualsTargetForcesValue) {
  Solver solver;
  std::vector<VarId> vars{solver.add_variable(0, 2), solver.add_variable(0, 2),
                          solver.add_variable(0, 2)};
  solver.add(make_count_eq(vars, 2, 3));
  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  for (const Value v : outcome.assignment) EXPECT_EQ(v, 2);
  EXPECT_LE(outcome.stats.nodes, 1);
}

TEST(CountEq, TargetZeroRemovesValueEverywhere) {
  Solver solver;
  std::vector<VarId> vars{solver.add_variable(0, 1), solver.add_variable(0, 1)};
  solver.add(make_count_eq(vars, 0, 0));
  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  for (const Value v : outcome.assignment) EXPECT_EQ(v, 1);
}

// --------------------------------------------------------- WeightedCountEq

TEST(WeightedCountEq, HeterogeneousAmounts) {
  // Two slots with rates 2 and 1; task value = 1; required amount 3:
  // both slots must take value 1.
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(0, 1), s.add_variable(0, 1)};
    s.add(make_weighted_count_eq(vars, {2, 1}, 1, 3));
    return vars;
  };
  EXPECT_TRUE(sat_with(build, {}));
  EXPECT_FALSE(sat_with(build, {{0, 0}}));
  EXPECT_FALSE(sat_with(build, {{1, 0}}));
}

TEST(WeightedCountEq, OvershootPruned) {
  // Rates {3}; amount 2: impossible (running overshoots, not running
  // undershoots).
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(0, 1)};
    s.add(make_weighted_count_eq(vars, {3}, 1, 2));
    return vars;
  };
  EXPECT_FALSE(sat_with(build, {}));
}

// ------------------------------------------------------ AllDifferentExcept

TEST(AllDifferentExcept, IdleMayRepeat) {
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(-1, 1), s.add_variable(-1, 1),
                            s.add_variable(-1, 1)};
    s.add(make_all_different_except(vars, -1));
    return vars;
  };
  EXPECT_TRUE(sat_with(build, {{0, -1}, {1, -1}, {2, -1}}));
  EXPECT_TRUE(sat_with(build, {{0, 0}, {1, 1}, {2, -1}}));
  EXPECT_FALSE(sat_with(build, {{0, 0}, {1, 0}}));
  EXPECT_FALSE(sat_with(build, {{0, 1}, {2, 1}}));
}

TEST(AllDifferentExcept, PropagatesRemovalFromFixed) {
  Solver solver;
  std::vector<VarId> vars{solver.add_variable(0, 1), solver.add_variable(0, 1)};
  solver.add(make_all_different_except(vars, -1));
  ASSERT_TRUE(solver.post_fix(vars[0], 1));
  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[1], 0);
}

// ------------------------------------------------------------ SymmetryChain

TEST(SymmetryChain, AscendingWithIdleLast) {
  // Domain {0,1,2, idle=3} on a 2-chain: valid rows are strictly ascending
  // non-idle prefixes with idles trailing.
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(0, 3), s.add_variable(0, 3)};
    s.add(make_symmetry_chain(vars, 3));
    return vars;
  };
  EXPECT_TRUE(sat_with(build, {{0, 0}, {1, 1}}));
  EXPECT_TRUE(sat_with(build, {{0, 2}, {1, 3}}));   // task then idle
  EXPECT_TRUE(sat_with(build, {{0, 3}, {1, 3}}));   // both idle
  EXPECT_FALSE(sat_with(build, {{0, 1}, {1, 1}}));  // equal non-idle
  EXPECT_FALSE(sat_with(build, {{0, 2}, {1, 1}}));  // descending
  EXPECT_FALSE(sat_with(build, {{0, 3}, {1, 0}}));  // task after idle
}

TEST(SymmetryChain, TripleChainTransitivity) {
  auto build = [](Solver& s) {
    std::vector<VarId> vars{s.add_variable(0, 4), s.add_variable(0, 4),
                            s.add_variable(0, 4)};
    s.add(make_symmetry_chain(vars, 4));
    return vars;
  };
  EXPECT_TRUE(sat_with(build, {{0, 0}, {1, 2}, {2, 3}}));
  EXPECT_TRUE(sat_with(build, {{0, 1}, {1, 4}, {2, 4}}));
  EXPECT_FALSE(sat_with(build, {{0, 2}, {2, 1}}));  // end below start
  EXPECT_FALSE(sat_with(build, {{1, 4}, {2, 0}}));  // task after idle
}

TEST(SymmetryChain, PropagatesBoundsBothWays) {
  Solver solver;
  // a in {2,3}, b in {0..4}, idle = 4: fixing b = 3 forces a to {2} (a < 3,
  // and idle is not allowed before a task).
  const VarId a = solver.add_variable(2, 3);
  const VarId b = solver.add_variable(0, 4);
  solver.add(make_symmetry_chain({a, b}, 4));
  ASSERT_TRUE(solver.post_fix(b, 3));
  const auto outcome = solver.solve({});
  ASSERT_EQ(outcome.status, SolveStatus::kSat);
  EXPECT_EQ(outcome.assignment[static_cast<std::size_t>(a)], 2);
}

}  // namespace
}  // namespace mgrts::csp
