#include "rt/jobs.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/error.hpp"
#include "testing.hpp"

namespace mgrts::rt {
namespace {

using mgrts::testing::example1;

TEST(WindowIndex, Example1Membership) {
  const TaskSet ts = example1();
  const WindowIndex w(ts);

  // tau1: O=0 C=1 D=2 T=2 -> every slot is in a window.
  for (Time t = 0; t < 12; ++t) EXPECT_TRUE(w.in_window(0, t)) << t;

  // tau3: O=0 D=2 T=3 -> slots {0,1, 3,4, 6,7, 9,10}; gaps at 2,5,8,11.
  const std::set<Time> tau3{0, 1, 3, 4, 6, 7, 9, 10};
  for (Time t = 0; t < 12; ++t) {
    EXPECT_EQ(w.in_window(2, t), tau3.count(t) == 1) << t;
  }
}

TEST(WindowIndex, WrappedWindowOfOffsetTask) {
  // tau2: O=1 D=4 T=4 over T=12: windows [1..4],[5..8],[9..12] where slot 12
  // wraps to 0.  Every slot is covered, and slot 0 belongs to job k=2.
  const TaskSet ts = example1();
  const WindowIndex w(ts);
  for (Time t = 0; t < 12; ++t) EXPECT_TRUE(w.in_window(1, t)) << t;
  const auto hit0 = w.hit(1, 0);
  ASSERT_TRUE(hit0.has_value());
  EXPECT_EQ(hit0->job, 2);
  EXPECT_EQ(hit0->depth, 3);  // last slot of the wrapped window
  const auto hit1 = w.hit(1, 1);
  ASSERT_TRUE(hit1.has_value());
  EXPECT_EQ(hit1->job, 0);
  EXPECT_EQ(hit1->depth, 0);
}

TEST(WindowIndex, JobAndDepthArithmetic) {
  const TaskSet ts = TaskSet::from_params({{0, 1, 2, 4}});
  const WindowIndex w(ts);
  EXPECT_EQ(w.hyperperiod(), 4);
  ASSERT_TRUE(w.hit(0, 0).has_value());
  EXPECT_EQ(w.hit(0, 0)->job, 0);
  EXPECT_EQ(w.hit(0, 1)->depth, 1);
  EXPECT_FALSE(w.hit(0, 2).has_value());
  EXPECT_FALSE(w.hit(0, 3).has_value());
}

TEST(WindowIndex, SlotsLeft) {
  const TaskSet ts = TaskSet::from_params({{0, 2, 3, 5}});
  const WindowIndex w(ts);
  EXPECT_EQ(w.slots_left(0, 0), 3);
  EXPECT_EQ(w.slots_left(0, 1), 2);
  EXPECT_EQ(w.slots_left(0, 2), 1);
  EXPECT_EQ(w.slots_left(0, 3), 0);  // outside
}

TEST(WindowIndex, TaskWindowsDisjointModT) {
  // Property: for a constrained task, each slot belongs to at most one job,
  // and the per-job slot counts equal D.
  const TaskSet ts = TaskSet::from_params({{3, 2, 4, 5}, {2, 1, 3, 3}});
  const WindowIndex w(ts);
  for (TaskId i = 0; i < ts.size(); ++i) {
    std::map<std::int64_t, int> per_job;
    for (Time t = 0; t < ts.hyperperiod(); ++t) {
      if (const auto hit = w.hit(i, t)) ++per_job[hit->job];
    }
    EXPECT_EQ(per_job.size(),
              static_cast<std::size_t>(ts.jobs_per_hyperperiod(i)));
    for (const auto& [job, count] : per_job) {
      EXPECT_EQ(count, ts[i].deadline()) << "task " << i << " job " << job;
    }
  }
}

TEST(JobTable, Example1Materialization) {
  const TaskSet ts = example1();
  const JobTable jobs(ts);
  EXPECT_EQ(jobs.size(), 13u);  // 6 + 3 + 4
  EXPECT_EQ(jobs.first_job_of(0), 0);
  EXPECT_EQ(jobs.first_job_of(1), 6);
  EXPECT_EQ(jobs.first_job_of(2), 9);
}

TEST(JobTable, WrappedSlotsAreReducedModT) {
  const TaskSet ts = example1();
  const JobTable jobs(ts);
  // tau2's third job: release 9, window slots {9, 10, 11, 0}.
  const Job& job = jobs.jobs()[static_cast<std::size_t>(jobs.first_job_of(1) + 2)];
  EXPECT_EQ(job.release, 9);
  EXPECT_EQ(job.abs_deadline, 13);
  EXPECT_EQ(job.slots, (std::vector<Time>{9, 10, 11, 0}));
}

TEST(JobTable, JobAtAgreesWithWindowIndex) {
  const TaskSet ts = example1();
  const JobTable jobs(ts);
  for (TaskId i = 0; i < ts.size(); ++i) {
    for (Time t = 0; t < ts.hyperperiod(); ++t) {
      const auto idx = jobs.job_at(i, t);
      const auto hit = jobs.windows().hit(i, t);
      EXPECT_EQ(idx >= 0, hit.has_value());
      if (idx >= 0) {
        const Job& job = jobs.jobs()[static_cast<std::size_t>(idx)];
        EXPECT_EQ(job.task, i);
        EXPECT_EQ(job.index, hit->job);
      }
    }
  }
}

TEST(JobTable, BudgetGuard) {
  const TaskSet ts = example1();
  EXPECT_THROW(JobTable(ts, 5), ResourceError);  // needs 6*2+3*4+4*2 slots
  EXPECT_NO_THROW(JobTable(ts, 1000));
}

}  // namespace
}  // namespace mgrts::rt
