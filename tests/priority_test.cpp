#include "priority/assignment.hpp"

#include <gtest/gtest.h>

#include "csp2/csp2.hpp"
#include "gen/generator.hpp"
#include "sim/simulator.hpp"
#include "testing.hpp"

namespace mgrts::prio {
namespace {

using mgrts::testing::dhall2;
using mgrts::testing::light3;
using rt::Platform;
using rt::TaskSet;

TEST(PrioritySearch, FindsOrderForLightLoad) {
  const SearchResult result =
      find_feasible_priority(light3(), Platform::identical(2));
  ASSERT_EQ(result.status, SearchStatus::kFound);
  ASSERT_TRUE(result.order.has_value());
  EXPECT_EQ(result.order->size(), 3u);
  EXPECT_GE(result.orders_tried, 1);
}

TEST(PrioritySearch, FoundOrderActuallySchedules) {
  const TaskSet ts = dhall2();
  const Platform p = Platform::identical(2);
  const SearchResult result = find_feasible_priority(ts, p);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  sim::SimOptions options;
  options.policy = sim::Policy::kFixedPriority;
  options.priority = *result.order;
  EXPECT_EQ(simulate(ts, p, options).status, sim::SimStatus::kSchedulable);
}

TEST(PrioritySearch, DhallNeedsNonTrivialOrder) {
  // Input order misses (heavy task last); the search must find one that
  // promotes tau3.  (D-C) does exactly that: D-C values are 1, 1, 0.
  const SearchResult result =
      find_feasible_priority(dhall2(), Platform::identical(2));
  ASSERT_EQ(result.status, SearchStatus::kFound);
  EXPECT_EQ(result.order->front(), 2);
  EXPECT_STREQ(result.source, "D-C");
}

TEST(PrioritySearch, ExhaustedOnImpossibleInstance) {
  // U > m: no priority order can work; with n=3 the search space is 6
  // orders, so exhaustion is fast and definitive.
  const TaskSet ts =
      TaskSet::from_params({{0, 2, 2, 2}, {0, 2, 2, 2}, {0, 2, 2, 2}});
  const SearchResult result =
      find_feasible_priority(ts, Platform::identical(2));
  EXPECT_EQ(result.status, SearchStatus::kExhausted);
  EXPECT_FALSE(result.order.has_value());
  EXPECT_GE(result.orders_tried, 6 + 5);  // ladder + all permutations
}

TEST(PrioritySearch, BudgetStopsEarly) {
  SearchOptions options;
  options.heuristics_first = false;
  options.max_orders = 1;
  const TaskSet ts =
      TaskSet::from_params({{0, 2, 2, 2}, {0, 2, 2, 2}, {0, 2, 2, 2}});
  const SearchResult result =
      find_feasible_priority(ts, Platform::identical(2), options);
  EXPECT_EQ(result.status, SearchStatus::kBudget);
  EXPECT_LE(result.orders_tried, 2);
}

TEST(PrioritySearch, ExpiredDeadlineStops) {
  SearchOptions options;
  options.deadline = support::Deadline::after_ms(0);
  const SearchResult result =
      find_feasible_priority(light3(), Platform::identical(2), options);
  EXPECT_EQ(result.status, SearchStatus::kBudget);
}

TEST(PrioritySearch, HeuristicLadderDisabled) {
  SearchOptions options;
  options.heuristics_first = false;
  const SearchResult result =
      find_feasible_priority(light3(), Platform::identical(2), options);
  ASSERT_EQ(result.status, SearchStatus::kFound);
  EXPECT_STREQ(result.source, "search");
}

TEST(PrioritySearch, FoundImpliesCsp2Feasible) {
  // FP-schedulable => feasible => the complete CSP2 solver must agree.
  int found = 0;
  for (std::uint64_t k = 0; k < 40; ++k) {
    gen::GeneratorOptions gopt;
    gopt.tasks = 4;
    gopt.processors = 2;
    gopt.t_max = 5;
    const auto inst = gen::generate_indexed(gopt, 616, k);
    const Platform p = Platform::identical(inst.processors);
    SearchOptions options;
    options.exhaustive = false;  // ladder only, keep the sweep fast
    const SearchResult result =
        find_feasible_priority(inst.tasks, p, options);
    if (result.status != SearchStatus::kFound) continue;
    ++found;
    EXPECT_EQ(csp2::solve(inst.tasks, p).status, csp2::Status::kFeasible)
        << "instance " << k;
  }
  EXPECT_GT(found, 3);
}

}  // namespace
}  // namespace mgrts::prio
