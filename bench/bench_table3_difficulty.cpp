// Table III reproduction (§VII-D): distribution of the generated instances
// over utilization-ratio buckets and mean resolution time per bucket
// (averaged over all six solvers; overruns counted at the full budget).
//
// Paper reference (500 instances, 30 s limit): the distribution is centered
// on the 0.9-1.0 bucket, and the mean resolution time grows monotonically
// with r — from ~2-8 s below 0.8 to pinned-at-limit beyond 1.3.  The shape
// to reproduce is exactly that monotone difficulty ramp around r = 1.
#include <cstdio>

#include "bench_common.hpp"
#include "exp/tables.hpp"

int main() {
  using namespace mgrts;

  const exp::BenchEnv env = exp::bench_env(/*instances=*/120,
                                           /*limit_ms=*/300);
  exp::BatchOptions options;
  options.generator = bench::paper_workload_small();
  options.instances = env.instances;
  options.seed = env.seed;
  options.workers = env.workers;

  bench::print_banner("Table III: difficulty vs utilization ratio", env,
                      options.generator);

  const auto specs = exp::paper_lineup(env.time_limit_ms, env.seed);
  const exp::BatchResult batch = exp::run_batch(options, specs);

  const double limit_seconds =
      static_cast<double>(env.time_limit_ms) / 1000.0;
  const auto table = exp::table3_difficulty(batch, limit_seconds);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n", exp::health_summary(batch.health).c_str());
  bench::maybe_write_csv("table3_difficulty", table);
  std::printf(
      "paper (500 inst / 30 s): #instances peaks in the 0.9-1.0 bucket; "
      "t_res rises monotonically with r and saturates at the limit past "
      "r ~ 1.3.\n");
  return 0;
}
