// Ablation C: the §VII-A parameter-sampling order.  The paper notes that
// drawing (C, D, T) in different orders induces different instance
// distributions — C->D->T favours large periods, T->D->C short WCETs — and
// picks the intermediate D-first scheme.  This bench reports the induced
// parameter statistics, utilization-ratio distribution, and how they shift
// solver outcomes (CSP2+(D-C)).
#include <cstdio>

#include "bench_common.hpp"
#include "exp/tables.hpp"
#include "support/table.hpp"

int main() {
  using namespace mgrts;

  const exp::BenchEnv env = exp::bench_env(/*instances=*/150,
                                           /*limit_ms=*/200);

  bench::print_banner("Ablation: generator parameter order (§VII-A)", env,
                      bench::paper_workload_small());

  support::TextTable stats({"order", "mean C", "mean D", "mean T", "mean r",
                            "r>1", "solved", "unsat", "overrun"});
  stats.set_title("distribution and outcome per sampling order");

  core::BatchHealth last_health;  // aggregated across the three orders
  for (const gen::ParamOrder order :
       {gen::ParamOrder::kDFirst, gen::ParamOrder::kCdt,
        gen::ParamOrder::kTdc}) {
    exp::BatchOptions options;
    options.generator = bench::paper_workload_small();
    options.generator.order = order;
    options.instances = env.instances;
    options.seed = env.seed;
    options.workers = env.workers;

    const std::vector<exp::SolverSpec> specs = {
        exp::csp2_spec(csp2::ValueOrder::kDMinusC, env.time_limit_ms)};
    const exp::BatchResult batch = exp::run_batch(options, specs);
    last_health.failures += batch.health.failures;
    last_health.retries += batch.health.retries;
    last_health.recovered += batch.health.recovered;
    last_health.quarantined += batch.health.quarantined;
    if (last_health.first_error.empty()) {
      last_health.first_error = batch.health.first_error;
    }

    // Regenerate the stream for parameter statistics (cheap and identical
    // by construction).
    double sum_c = 0;
    double sum_d = 0;
    double sum_t = 0;
    double sum_r = 0;
    std::int64_t over = 0;
    std::int64_t tasks_seen = 0;
    for (std::int64_t k = 0; k < env.instances; ++k) {
      const auto inst = gen::generate_indexed(
          options.generator, options.seed, static_cast<std::uint64_t>(k));
      for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
        sum_c += static_cast<double>(inst.tasks[i].wcet());
        sum_d += static_cast<double>(inst.tasks[i].deadline());
        sum_t += static_cast<double>(inst.tasks[i].period());
        ++tasks_seen;
      }
      sum_r += inst.tasks.utilization_ratio(inst.processors);
      over += inst.tasks.exceeds_capacity(inst.processors) ? 1 : 0;
    }

    std::int64_t solved = 0;
    std::int64_t unsat = 0;
    std::int64_t overruns = 0;
    for (const auto& inst : batch.instances) {
      solved += inst.runs[0].found_schedule() ? 1 : 0;
      unsat += inst.runs[0].proved_infeasible() ? 1 : 0;
      overruns += inst.runs[0].overrun() ? 1 : 0;
    }

    const auto tcount = static_cast<double>(tasks_seen);
    const auto icount = static_cast<double>(env.instances);
    stats.add_row({gen::to_string(order),
                   support::TextTable::num(sum_c / tcount, 2),
                   support::TextTable::num(sum_d / tcount, 2),
                   support::TextTable::num(sum_t / tcount, 2),
                   support::TextTable::num(sum_r / icount, 2),
                   support::TextTable::num(over),
                   support::TextTable::num(solved),
                   support::TextTable::num(unsat),
                   support::TextTable::num(overruns)});
  }
  std::printf("%s\n", stats.to_string().c_str());
  std::printf("%s\n", exp::health_summary(last_health).c_str());
  std::printf(
      "expected: C->D->T yields the largest periods (and highest r, many "
      "r>1 rejects); T->D->C the smallest WCETs (easiest instances); the "
      "paper's D-first sits between them.\n");
  return 0;
}
