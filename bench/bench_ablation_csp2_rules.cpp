// Ablation A: contribution of the CSP2 search rules (§V-C) on the Table-I
// workload.  The paper motivates rule 1 (idle only when nothing can run),
// rule 2 (ascending symmetry, up to m! reduction per slot) and chronological
// ordering qualitatively; this bench quantifies them: solved counts,
// overruns and search nodes with each rule toggled.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/tables.hpp"
#include "support/table.hpp"

int main() {
  using namespace mgrts;

  const exp::BenchEnv env = exp::bench_env(/*instances=*/60,
                                           /*limit_ms=*/300);
  exp::BatchOptions options;
  options.generator = bench::paper_workload_small();
  options.instances = env.instances;
  options.seed = env.seed;
  options.workers = env.workers;

  bench::print_banner("Ablation: CSP2 search rules (value order = D-C)", env,
                      options.generator);

  struct Variant {
    const char* label;
    bool idle_rule;
    bool symmetry;
    bool slack;
    bool demand;
  };
  const Variant variants[] = {
      {"all-rules", true, true, true, true},
      {"no-idle-rule", false, true, true, true},
      {"no-symmetry", true, false, true, true},
      {"no-slack-prune", true, true, false, true},
      {"no-demand-prune", true, true, true, false},
      {"bare-backtracking", false, false, false, false},
  };

  std::vector<exp::SolverSpec> specs;
  for (const auto& variant : variants) {
    exp::SolverSpec spec =
        exp::csp2_spec(csp2::ValueOrder::kDMinusC, env.time_limit_ms);
    spec.label = variant.label;
    spec.config.csp2.idle_rule = variant.idle_rule;
    spec.config.csp2.symmetry_rule = variant.symmetry;
    spec.config.csp2.slack_prune = variant.slack;
    spec.config.csp2.tight_demand_prune = variant.demand;
    specs.push_back(std::move(spec));
  }

  const exp::BatchResult batch = exp::run_batch(options, specs);

  support::TextTable table(
      {"variant", "solved", "proved-unsat", "overruns", "avg nodes",
       "avg time(ms)"});
  table.set_title("CSP2 rule ablation");
  for (std::size_t s = 0; s < specs.size(); ++s) {
    std::int64_t solved = 0;
    std::int64_t unsat = 0;
    std::int64_t overruns = 0;
    double nodes = 0;
    double ms = 0;
    for (const auto& inst : batch.instances) {
      const auto& run = inst.runs[s];
      solved += run.found_schedule() ? 1 : 0;
      unsat += run.proved_infeasible() ? 1 : 0;
      overruns += run.overrun() ? 1 : 0;
      nodes += static_cast<double>(run.nodes);
      ms += run.seconds * 1000.0;
    }
    const auto count = static_cast<double>(batch.instances.size());
    table.add_row({specs[s].label, support::TextTable::num(solved),
                   support::TextTable::num(unsat),
                   support::TextTable::num(overruns),
                   support::TextTable::num(nodes / count, 0),
                   support::TextTable::num(ms / count, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n", exp::health_summary(batch.health).c_str());
  bench::maybe_write_csv("ablation_csp2_rules", table);
  std::printf(
      "expected: disabling the idle rule or symmetry inflates nodes and "
      "overruns; the pruning toggles mostly affect infeasible proofs.\n");
  return 0;
}
