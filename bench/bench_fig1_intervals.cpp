// Figure 1 reproduction: the availability-interval pattern of Example 1's
// tasks over one hyperperiod (T = 12, O1 = O3 = 0, O2 = 1), plus — beyond
// the figure — a feasible schedule realizing the pattern.
#include <cstdio>

#include "core/solve.hpp"
#include "rt/gantt.hpp"

int main() {
  using namespace mgrts;

  const rt::TaskSet tasks = rt::TaskSet::from_params({
      {0, 1, 2, 2},  // tau1: D1 = T1 = 2
      {1, 3, 4, 4},  // tau2: O2 = 1, D2 = T2 = 4
      {0, 2, 2, 3},  // tau3: D3 = 2, T3 = 3
  });

  std::printf("== Figure 1: availability intervals of Example 1 ==\n");
  std::printf("paper: m = 2, n = 3, hyperperiod T = lcm(2,4,3) = 12\n\n");
  std::printf("%s\n", rt::render_windows(tasks).c_str());
  std::printf(
      "reading: '#' marks slots inside an availability interval\n"
      "  tau1/tau2 cover every slot (tau2 via the window wrapping past T);\n"
      "  tau3 leaves slots 2, 5, 8, 11 uncovered, matching the figure.\n\n");

  const core::SolveReport report = core::solve_instance(
      tasks, rt::Platform::identical(2));
  if (report.schedule.has_value()) {
    std::printf("a feasible schedule realizing the pattern (CSP2):\n%s",
                rt::render_schedule(tasks, *report.schedule).c_str());
    std::printf("\nwitness validated: %s\n",
                report.witness_valid ? "yes" : "NO");
  }
  return 0;
}
