// Shared plumbing for the reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/env.hpp"
#include "exp/harness.hpp"
#include "support/table.hpp"

namespace mgrts::bench {

inline void print_banner(const char* what, const exp::BenchEnv& env,
                         const gen::GeneratorOptions& gen) {
  std::printf("== %s ==\n", what);
  std::printf(
      "config: %lld instances, %lld ms/run limit, seed %llu, n=%d, Tmax=%lld"
      "%s%s\n",
      static_cast<long long>(env.instances),
      static_cast<long long>(env.time_limit_ms),
      static_cast<unsigned long long>(env.seed), gen.tasks,
      static_cast<long long>(gen.t_max),
      gen.rule == gen::ProcessorRule::kFixed ? ", m=" : ", m=m_min",
      gen.rule == gen::ProcessorRule::kFixed
          ? std::to_string(gen.processors).c_str()
          : "");
  if (!env.full) {
    std::printf(
        "note: scaled-down defaults; set MGRTS_FULL=1 for the paper-scale "
        "run (500 instances, 30 s limit), or override via MGRTS_INSTANCES / "
        "MGRTS_TIME_LIMIT_MS / MGRTS_SEED / MGRTS_WORKERS.\n");
  }
  std::printf("\n");
}

/// The Table I-III workload of §VII-C: m=5, n=10, Tmax=7, D-first sampling,
/// unfiltered (r > 1 instances included).
inline gen::GeneratorOptions paper_workload_small() {
  gen::GeneratorOptions options;
  options.tasks = 10;
  options.processors = 5;
  options.rule = gen::ProcessorRule::kFixed;
  options.t_max = 7;
  options.order = gen::ParamOrder::kDFirst;
  return options;
}

// ------------------------------------------------- machine-readable output
//
// Every bench can dump a BENCH_<name>.json next to its textual table so the
// perf trajectory (nodes/sec, propagations/sec, wall time) is tracked
// across PRs by tooling instead of eyeballs.  Schema:
//   { "bench": "<name>",
//     "entries": [ { "name": "...", "<metric>": <number>, ... }, ... ],
//     "history": [ { "sha": "...", "metrics": {"<name>.<metric>": n} } ] }
//
// `entries` is always the current run.  `history` makes the committed file
// a real cross-PR trajectory instead of a single overwritten snapshot:
// each write appends one flattened {sha, metrics} row for this run to the
// rows carried over from the committed baseline (MGRTS_BENCH_BASELINE when
// set, else the previous file at the output path), capped at the newest
// kHistoryCap rows.  tools/check_bench_regression.py gates against the
// LAST committed history row (falling back to `entries` for pre-history
// baselines), so the ledger compares like-for-like runs while the full
// trajectory stays greppable in one file.

/// One record in BENCH_<name>.json: a label plus numeric metrics.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  BenchRecord& metric(std::string key, double value) {
    metrics.emplace_back(std::move(key), value);
    return *this;
  }
};

/// Collects records and writes BENCH_<name>.json into MGRTS_BENCH_JSON_DIR
/// (default: the working directory) on write().
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  BenchRecord& record(std::string name) {
    records_.push_back(BenchRecord{std::move(name), {}});
    return records_.back();
  }

  void write() const {
    const char* dir = std::getenv("MGRTS_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr && *dir != '\0')
                                 ? std::string(dir) + "/BENCH_" + bench_ +
                                       ".json"
                                 : "BENCH_" + bench_ + ".json";
    const char* baseline = std::getenv("MGRTS_BENCH_BASELINE");
    std::vector<std::string> history = read_history(
        baseline != nullptr && *baseline != '\0' ? baseline : path.c_str());
    history.push_back(snapshot_line());
    while (history.size() > kHistoryCap) history.erase(history.begin());

    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"entries\": [";
    for (std::size_t k = 0; k < records_.size(); ++k) {
      const BenchRecord& r = records_[k];
      out << (k == 0 ? "\n" : ",\n") << "    {\"name\": \"" << r.name << '"';
      for (const auto& [key, value] : r.metrics) {
        out << ", \"" << key << "\": " << format_number(value);
      }
      out << '}';
    }
    out << "\n  ],\n  \"history\": [";
    for (std::size_t k = 0; k < history.size(); ++k) {
      out << (k == 0 ? "\n" : ",\n") << "    " << history[k];
    }
    out << "\n  ]\n}\n";
    std::printf("(json written to %s, history depth %zu)\n", path.c_str(),
                history.size());
  }

 private:
  /// Newest-first trajectory rows kept in the file; old rows age out so the
  /// committed ledger stays reviewable.
  static constexpr std::size_t kHistoryCap = 12;

  static std::string format_number(double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return buf;
  }

  /// This run as one flattened single-line history row.
  std::string snapshot_line() const {
    std::string sha = "unknown";
    if (const char* env = std::getenv("MGRTS_GIT_SHA");
        env != nullptr && *env != '\0') {
      sha = env;
    } else if (std::FILE* pipe =
                   ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
      char buf[64] = {};
      if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
        std::string raw(buf);
        raw.erase(raw.find_last_not_of(" \n\r\t") + 1);
        if (!raw.empty()) sha = std::move(raw);
      }
      ::pclose(pipe);
    }
    std::string line = "{\"sha\": \"" + sha + "\", \"metrics\": {";
    bool first = true;
    for (const BenchRecord& r : records_) {
      for (const auto& [key, value] : r.metrics) {
        if (!first) line += ", ";
        first = false;
        line += "\"" + r.name + "." + key + "\": " + format_number(value);
      }
    }
    line += "}}";
    return line;
  }

  /// Carried-over history rows of `path` (one row per line, the shape this
  /// writer emits).  Missing file or no history block -> empty.
  static std::vector<std::string> read_history(const char* path) {
    std::vector<std::string> rows;
    std::ifstream in(path);
    if (!in) return rows;
    std::string line;
    bool inside = false;
    while (std::getline(in, line)) {
      const std::size_t begin = line.find_first_not_of(" \t");
      if (begin == std::string::npos) continue;
      std::string body = line.substr(begin);
      if (!inside) {
        inside = body.rfind("\"history\":", 0) == 0;
        continue;
      }
      if (body[0] == ']') break;
      if (body.back() == ',') body.pop_back();
      if (body[0] == '{') rows.push_back(std::move(body));
    }
    return rows;
  }

  std::string bench_;
  // Deque: record() hands out references that must survive later record()
  // calls (a vector reallocation would dangle them).
  std::deque<BenchRecord> records_;
};

/// When MGRTS_CSV_DIR is set, additionally dumps the table as
/// $MGRTS_CSV_DIR/<name>.csv for downstream analysis.
inline void maybe_write_csv(const char* name, const support::TextTable& table) {
  const char* dir = std::getenv("MGRTS_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.to_csv();
  std::printf("(csv written to %s)\n", path.c_str());
}

}  // namespace mgrts::bench
