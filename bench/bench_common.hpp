// Shared plumbing for the reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "exp/env.hpp"
#include "exp/harness.hpp"
#include "support/table.hpp"

namespace mgrts::bench {

inline void print_banner(const char* what, const exp::BenchEnv& env,
                         const gen::GeneratorOptions& gen) {
  std::printf("== %s ==\n", what);
  std::printf(
      "config: %lld instances, %lld ms/run limit, seed %llu, n=%d, Tmax=%lld"
      "%s%s\n",
      static_cast<long long>(env.instances),
      static_cast<long long>(env.time_limit_ms),
      static_cast<unsigned long long>(env.seed), gen.tasks,
      static_cast<long long>(gen.t_max),
      gen.rule == gen::ProcessorRule::kFixed ? ", m=" : ", m=m_min",
      gen.rule == gen::ProcessorRule::kFixed
          ? std::to_string(gen.processors).c_str()
          : "");
  if (!env.full) {
    std::printf(
        "note: scaled-down defaults; set MGRTS_FULL=1 for the paper-scale "
        "run (500 instances, 30 s limit), or override via MGRTS_INSTANCES / "
        "MGRTS_TIME_LIMIT_MS / MGRTS_SEED / MGRTS_WORKERS.\n");
  }
  std::printf("\n");
}

/// The Table I-III workload of §VII-C: m=5, n=10, Tmax=7, D-first sampling,
/// unfiltered (r > 1 instances included).
inline gen::GeneratorOptions paper_workload_small() {
  gen::GeneratorOptions options;
  options.tasks = 10;
  options.processors = 5;
  options.rule = gen::ProcessorRule::kFixed;
  options.t_max = 7;
  options.order = gen::ParamOrder::kDFirst;
  return options;
}

// ------------------------------------------------- machine-readable output
//
// Every bench can dump a BENCH_<name>.json next to its textual table so the
// perf trajectory (nodes/sec, propagations/sec, wall time) is tracked
// across PRs by tooling instead of eyeballs.  Schema:
//   { "bench": "<name>",
//     "entries": [ { "name": "...", "<metric>": <number>, ... }, ... ] }

/// One record in BENCH_<name>.json: a label plus numeric metrics.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;

  BenchRecord& metric(std::string key, double value) {
    metrics.emplace_back(std::move(key), value);
    return *this;
  }
};

/// Collects records and writes BENCH_<name>.json into MGRTS_BENCH_JSON_DIR
/// (default: the working directory) on write().
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  BenchRecord& record(std::string name) {
    records_.push_back(BenchRecord{std::move(name), {}});
    return records_.back();
  }

  void write() const {
    const char* dir = std::getenv("MGRTS_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr && *dir != '\0')
                                 ? std::string(dir) + "/BENCH_" + bench_ +
                                       ".json"
                                 : "BENCH_" + bench_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"entries\": [";
    for (std::size_t k = 0; k < records_.size(); ++k) {
      const BenchRecord& r = records_[k];
      out << (k == 0 ? "\n" : ",\n") << "    {\"name\": \"" << r.name << '"';
      for (const auto& [key, value] : r.metrics) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        out << ", \"" << key << "\": " << buf;
      }
      out << '}';
    }
    out << "\n  ]\n}\n";
    std::printf("(json written to %s)\n", path.c_str());
  }

 private:
  std::string bench_;
  // Deque: record() hands out references that must survive later record()
  // calls (a vector reallocation would dangle them).
  std::deque<BenchRecord> records_;
};

/// When MGRTS_CSV_DIR is set, additionally dumps the table as
/// $MGRTS_CSV_DIR/<name>.csv for downstream analysis.
inline void maybe_write_csv(const char* name, const support::TextTable& table) {
  const char* dir = std::getenv("MGRTS_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.to_csv();
  std::printf("(csv written to %s)\n", path.c_str());
}

}  // namespace mgrts::bench
