// Shared plumbing for the reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "exp/env.hpp"
#include "exp/harness.hpp"
#include "support/table.hpp"

namespace mgrts::bench {

inline void print_banner(const char* what, const exp::BenchEnv& env,
                         const gen::GeneratorOptions& gen) {
  std::printf("== %s ==\n", what);
  std::printf(
      "config: %lld instances, %lld ms/run limit, seed %llu, n=%d, Tmax=%lld"
      "%s%s\n",
      static_cast<long long>(env.instances),
      static_cast<long long>(env.time_limit_ms),
      static_cast<unsigned long long>(env.seed), gen.tasks,
      static_cast<long long>(gen.t_max),
      gen.rule == gen::ProcessorRule::kFixed ? ", m=" : ", m=m_min",
      gen.rule == gen::ProcessorRule::kFixed
          ? std::to_string(gen.processors).c_str()
          : "");
  if (!env.full) {
    std::printf(
        "note: scaled-down defaults; set MGRTS_FULL=1 for the paper-scale "
        "run (500 instances, 30 s limit), or override via MGRTS_INSTANCES / "
        "MGRTS_TIME_LIMIT_MS / MGRTS_SEED / MGRTS_WORKERS.\n");
  }
  std::printf("\n");
}

/// The Table I-III workload of §VII-C: m=5, n=10, Tmax=7, D-first sampling,
/// unfiltered (r > 1 instances included).
inline gen::GeneratorOptions paper_workload_small() {
  gen::GeneratorOptions options;
  options.tasks = 10;
  options.processors = 5;
  options.rule = gen::ProcessorRule::kFixed;
  options.t_max = 7;
  options.order = gen::ParamOrder::kDFirst;
  return options;
}

/// When MGRTS_CSV_DIR is set, additionally dumps the table as
/// $MGRTS_CSV_DIR/<name>.csv for downstream analysis.
inline void maybe_write_csv(const char* name, const support::TextTable& table) {
  const char* dir = std::getenv("MGRTS_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << table.to_csv();
  std::printf("(csv written to %s)\n", path.c_str());
}

}  // namespace mgrts::bench
