// Ablation B: generic-engine strategies across the two encodings.
//
// Separates the paper's two contributions — the *encoding* (CSP1 booleans
// vs CSP2 multi-valued variables) and the *search* (generic vs dedicated):
//   * CSP1 under lex / min-domain / dom-wdeg / dom-wdeg+restarts;
//   * CSP2-generic with and without declarative symmetry chains;
//   * the dedicated CSP2+(D-C) solver as the reference point.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/tables.hpp"
#include "support/table.hpp"

int main() {
  using namespace mgrts;

  const exp::BenchEnv env = exp::bench_env(/*instances=*/40,
                                           /*limit_ms=*/300);
  exp::BatchOptions options;
  options.generator = bench::paper_workload_small();
  options.generator.tasks = 8;   // slightly smaller than Table I so the
  options.generator.processors = 4;  // weak strategies terminate sometimes
  options.instances = env.instances;
  options.seed = env.seed;
  options.workers = env.workers;

  bench::print_banner("Ablation: generic-solver strategies per encoding", env,
                      options.generator);

  auto generic_spec = [&](const char* label, core::Method method,
                          csp::VarHeuristic var, bool restarts,
                          bool chains) {
    exp::SolverSpec spec;
    spec.label = label;
    spec.config.method = method;
    spec.config.time_limit_ms = env.time_limit_ms;
    spec.config.generic.var_heuristic = var;
    spec.config.generic.val_heuristic = csp::ValHeuristic::kMin;
    spec.config.generic.seed = env.seed;
    if (restarts) {
      spec.config.generic.val_heuristic = csp::ValHeuristic::kRandom;
      spec.config.generic.random_var_ties = true;
      spec.config.generic.restart = csp::RestartPolicy::kLuby;
    }
    spec.config.csp2_generic.symmetry_chains = chains;
    return spec;
  };

  std::vector<exp::SolverSpec> specs;
  specs.push_back(generic_spec("csp1/lex", core::Method::kCsp1Generic,
                               csp::VarHeuristic::kLex, false, true));
  specs.push_back(generic_spec("csp1/min-dom", core::Method::kCsp1Generic,
                               csp::VarHeuristic::kMinDomain, false, true));
  specs.push_back(generic_spec("csp1/dom-wdeg", core::Method::kCsp1Generic,
                               csp::VarHeuristic::kDomWdeg, false, true));
  specs.push_back(generic_spec("csp1/wdeg+restart", core::Method::kCsp1Generic,
                               csp::VarHeuristic::kDomWdeg, true, true));
  specs.push_back(generic_spec("csp2gen/chains", core::Method::kCsp2Generic,
                               csp::VarHeuristic::kLex, false, true));
  specs.push_back(generic_spec("csp2gen/no-chains",
                               core::Method::kCsp2Generic,
                               csp::VarHeuristic::kLex, false, false));
  specs.push_back(
      exp::csp2_spec(csp2::ValueOrder::kDMinusC, env.time_limit_ms));

  const exp::BatchResult batch = exp::run_batch(options, specs);

  support::TextTable table(
      {"strategy", "solved", "proved-unsat", "overruns", "avg time(ms)"});
  table.set_title("generic strategies vs dedicated search");
  for (std::size_t s = 0; s < specs.size(); ++s) {
    std::int64_t solved = 0;
    std::int64_t unsat = 0;
    std::int64_t overruns = 0;
    double ms = 0;
    for (const auto& inst : batch.instances) {
      const auto& run = inst.runs[s];
      solved += run.found_schedule() ? 1 : 0;
      unsat += run.proved_infeasible() ? 1 : 0;
      overruns += run.overrun() ? 1 : 0;
      ms += run.seconds * 1000.0;
    }
    table.add_row({specs[s].label, support::TextTable::num(solved),
                   support::TextTable::num(unsat),
                   support::TextTable::num(overruns),
                   support::TextTable::num(
                       ms / static_cast<double>(batch.instances.size()), 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n", exp::health_summary(batch.health).c_str());
  std::printf(
      "expected: the multi-valued encoding beats the boolean one at any "
      "fixed strategy, and the dedicated chronological search beats every "
      "generic strategy — the paper's two headline effects.\n");
  return 0;
}
