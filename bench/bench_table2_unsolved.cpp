// Table II reproduction (§VII-C): among *unsolved* instances, the overruns
// split into instances the exact r > 1 necessary-condition filter would
// have discarded vs. the rest, plus the companion counts quoted in the
// text (how many unfiltered unsolved instances are provably unsolvable).
//
// Paper reference (same run matrix as Table I):
//     # overruns   CSP1  CSP2  +RM  +DM  +(T-C)  +(D-C)  Total
//     filtered      183   170  170  170     170     170    183
//     unfiltered     22    19   19   19      19      19     22
// and: "out of the 22 unfiltered unsolved instances, only 3 are provably
// unsolvable".
#include <cstdio>

#include "bench_common.hpp"
#include "exp/tables.hpp"

int main() {
  using namespace mgrts;

  const exp::BenchEnv env = exp::bench_env(/*instances=*/80,
                                           /*limit_ms=*/400);
  exp::BatchOptions options;
  options.generator = bench::paper_workload_small();
  options.instances = env.instances;
  options.seed = env.seed;
  options.workers = env.workers;

  bench::print_banner("Table II: unsolved runs, filtered vs unfiltered", env,
                      options.generator);

  const auto specs = exp::paper_lineup(env.time_limit_ms, env.seed);
  const exp::BatchResult batch = exp::run_batch(options, specs);

  const auto table = exp::table2_unsolved(batch);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n", exp::health_summary(batch.health).c_str());
  bench::maybe_write_csv("table2_unsolved", table);

  const exp::UnsolvedSummary summary = exp::summarize_unsolved(batch);
  std::printf("unsolved instances: %lld (filtered by r>1: %lld, "
              "unfiltered: %lld)\n",
              static_cast<long long>(summary.unsolved),
              static_cast<long long>(summary.filtered),
              static_cast<long long>(summary.unfiltered));
  std::printf("unfiltered unsolved instances proven unsolvable by some "
              "solver: %lld\n",
              static_cast<long long>(summary.provably_unsolvable));
  std::printf(
      "\npaper (500 inst / 30 s): 205 unsolved = 183 filtered + 22 "
      "unfiltered, of which 3 provably unsolvable.\n");
  return 0;
}
