// Table I reproduction (§VII-C): number of runs reaching the time limit
// for CSP1 (generic solver) and CSP2 {plain, +RM, +DM, +(T-C), +(D-C)},
// split into instances solved by at least one solver vs. unsolved.
//
// Paper reference (500 instances, m=5, n=10, Tmax=7, 30 s limit,
// Core2Quad 2.4 GHz):
//     # overruns   CSP1  CSP2  +RM  +DM  +(T-C)  +(D-C)  Total
//     solved        202   133  115  111      34      12    295
//     unsolved      205   189  189  189     189     189    205
// Expected shape at any budget: CSP1 >> CSP2 > +RM > +DM > +(T-C) > +(D-C)
// on solved instances; all CSP2 variants behave alike on unsolved ones.
#include <cstdio>

#include "bench_common.hpp"
#include "exp/tables.hpp"

int main() {
  using namespace mgrts;

  const exp::BenchEnv env = exp::bench_env(/*instances=*/80,
                                           /*limit_ms=*/400);
  exp::BatchOptions options;
  options.generator = bench::paper_workload_small();
  options.instances = env.instances;
  options.seed = env.seed;
  options.workers = env.workers;

  bench::print_banner("Table I: runs reaching the time limit", env,
                      options.generator);

  const auto specs = exp::paper_lineup(env.time_limit_ms, env.seed);
  const exp::BatchResult batch = exp::run_batch(options, specs);

  const auto table = exp::table1_overruns(batch);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("%s\n", exp::health_summary(batch.health).c_str());
  bench::maybe_write_csv("table1_overruns", table);

  std::int64_t solved = 0;
  for (const auto& inst : batch.instances) {
    if (inst.solved_by_any()) ++solved;
  }
  std::printf("instances solved by at least one solver: %lld / %lld\n",
              static_cast<long long>(solved),
              static_cast<long long>(env.instances));
  std::printf(
      "\npaper (500 inst / 30 s): solved-row overruns 202/133/115/111/34/12; "
      "unsolved-row 205 and 189 across all CSP2 variants.\n");
  return 0;
}
