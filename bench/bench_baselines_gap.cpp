// Baseline gap study: how much of the CSP solvers' work could cheaper
// methods do, and where does only the exact approach succeed?
//
// On the Table-I workload this compares, per instance:
//   * analytical quick tests       (O(n log n) filters, exact one-sided)
//   * global EDF simulation        (online baseline; Dhall-style anomalies)
//   * partitioned first-fit        (no-migration baseline, §VIII)
//   * min-conflicts local search   (§VIII future-work bullet 1)
//   * the flow oracle              (exact, identical platforms only)
//   * CSP2+(D-C)                   (the paper's winner)
//   * the staged pipeline          (presolve stages + CSP2 backend)
// and reports solved counts, proved-infeasible counts, and the number of
// instances where the exact approaches were strictly necessary.
//
// Every method's private status enum flows through core::canonical_verdict
// — one mapping, one tally routine, no per-call-site switch statements.
#include <cstdio>

#include "analysis/tests.hpp"
#include "bench_common.hpp"
#include "core/solve.hpp"
#include "flow/oracle.hpp"
#include "localsearch/min_conflicts.hpp"
#include "partition/partition.hpp"
#include "rt/validate.hpp"
#include "sim/simulator.hpp"
#include "support/deadline.hpp"
#include "support/table.hpp"

int main() {
  using namespace mgrts;

  const exp::BenchEnv env = exp::bench_env(/*instances=*/100,
                                           /*limit_ms=*/300);
  gen::GeneratorOptions gopt = bench::paper_workload_small();
  bench::print_banner("Baseline gap vs exact CSP scheduling", env, gopt);

  struct Row {
    std::int64_t feasible_found = 0;
    std::int64_t infeasible_proved = 0;
    std::int64_t undecided = 0;
    std::int64_t invalid = 0;  // witnesses failing the validator (must be 0)
    double ms = 0;
  };
  Row analysis_row, edf, part, local, oracle_row, csp2_row, pipeline_row;
  std::int64_t only_exact_found = 0;   // feasible found only by oracle/CSP2
  std::int64_t migration_needed = 0;   // feasible but partitioning failed
  std::int64_t presolve_decided = 0;   // pipeline runs settled before search

  // One tally for every method: the canonical verdict plus completeness
  // decides the bucket; incomplete infeasible claims (EDF) count as
  // undecided, like kUnknown.
  auto tally = [](Row& row, core::Verdict verdict, bool complete,
                  bool witness_bad) {
    if (verdict == core::Verdict::kFeasible) {
      ++row.feasible_found;
      if (witness_bad) ++row.invalid;
    } else if (verdict == core::Verdict::kInfeasible && complete) {
      ++row.infeasible_proved;
    } else {
      ++row.undecided;
    }
  };

  for (std::int64_t k = 0; k < env.instances; ++k) {
    const auto inst = gen::generate_indexed(
        gopt, env.seed, static_cast<std::uint64_t>(k));
    const rt::Platform platform = rt::Platform::identical(inst.processors);

    auto timed = [&](Row& row, auto&& fn) {
      support::Stopwatch watch;
      fn(row);
      row.ms += watch.seconds() * 1000.0;
    };

    auto bad_witness = [&](const std::optional<rt::Schedule>& schedule) {
      return schedule.has_value() &&
             !rt::is_valid_schedule(inst.tasks, platform, *schedule);
    };

    timed(analysis_row, [&](Row& row) {
      const auto verdict =
          analysis::quick_decide(inst.tasks, inst.processors).verdict;
      tally(row, core::canonical_verdict(verdict), /*complete=*/true,
            /*witness_bad=*/false);
    });

    timed(edf, [&](Row& row) {
      const auto result = sim::simulate(inst.tasks, platform);
      const bool schedulable = result.status == sim::SimStatus::kSchedulable;
      // EDF is sound only in the feasible direction: a miss proves nothing.
      tally(row,
            schedulable ? core::Verdict::kFeasible : core::Verdict::kUnknown,
            /*complete=*/false, schedulable && bad_witness(result.schedule));
    });

    bool partition_found = false;
    timed(part, [&](Row& row) {
      const auto result = partition::partition_tasks(inst.tasks,
                                                     inst.processors);
      partition_found = result.found;
      tally(row,
            result.found ? core::Verdict::kFeasible : core::Verdict::kUnknown,
            /*complete=*/false, result.found && bad_witness(result.schedule));
    });

    timed(local, [&](Row& row) {
      ls::Options options;
      options.seed = env.seed + static_cast<std::uint64_t>(k);
      options.deadline = support::Deadline::after_ms(env.time_limit_ms);
      const auto result = ls::solve(inst.tasks, platform, options);
      tally(row, core::canonical_verdict(result.status), /*complete=*/false,
            bad_witness(result.schedule));
    });

    bool oracle_feasible = false;
    timed(oracle_row, [&](Row& row) {
      const auto oracle = flow::decide_feasibility(inst.tasks, platform);
      const core::Verdict verdict = core::canonical_verdict(oracle.verdict);
      oracle_feasible = verdict == core::Verdict::kFeasible;
      tally(row, verdict, /*complete=*/true, bad_witness(oracle.schedule));
    });

    bool csp2_found = false;
    timed(csp2_row, [&](Row& row) {
      core::SolveConfig config;
      config.method = core::Method::kCsp2Dedicated;
      config.csp2.value_order = csp2::ValueOrder::kDMinusC;
      config.time_limit_ms = env.time_limit_ms;
      config.pipeline = core::PipelineOptions::none();
      const auto report = core::solve_instance(inst.tasks, platform, config);
      csp2_found = report.verdict == core::Verdict::kFeasible;
      tally(row, report.verdict, report.complete,
            csp2_found && !report.witness_valid);
    });

    timed(pipeline_row, [&](Row& row) {
      core::SolveConfig config;
      config.method = core::Method::kCsp2Dedicated;
      config.csp2.value_order = csp2::ValueOrder::kDMinusC;
      config.time_limit_ms = env.time_limit_ms;
      config.pipeline = core::PipelineOptions::full();
      const auto report = core::solve_instance(inst.tasks, platform, config);
      tally(row, report.verdict, report.complete,
            report.verdict == core::Verdict::kFeasible &&
                report.schedule.has_value() && !report.witness_valid);
      if (report.decided_by.rfind("backend:", 0) != 0 &&
          core::decisive(report.verdict, report.complete)) {
        ++presolve_decided;
      }
    });

    if (oracle_feasible && !partition_found) ++migration_needed;
    if (csp2_found && !partition_found) {
      // Would any cheap feasibility route have found it?
      ++only_exact_found;
    }
  }

  support::TextTable table({"method", "feasible", "proved-unsat", "undecided",
                            "bad-witness", "total ms"});
  table.set_title("per-method outcomes over the batch");
  auto emit = [&](const char* name, const Row& row) {
    table.add_row({name, support::TextTable::num(row.feasible_found),
                   support::TextTable::num(row.infeasible_proved),
                   support::TextTable::num(row.undecided),
                   support::TextTable::num(row.invalid),
                   support::TextTable::num(row.ms, 1)});
  };
  emit("analysis filters", analysis_row);
  emit("global EDF", edf);
  emit("partition FF", part);
  emit("local search", local);
  emit("flow oracle", oracle_row);
  emit("CSP2+(D-C)", csp2_row);
  emit("pipeline", pipeline_row);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("feasible instances partitioning missed (migration pays): %lld\n",
              static_cast<long long>(migration_needed));
  std::printf("CSP2-feasible instances no partition heuristic found: %lld\n",
              static_cast<long long>(only_exact_found));
  std::printf("pipeline runs decided by presolve stages: %lld of %lld\n",
              static_cast<long long>(presolve_decided),
              static_cast<long long>(env.instances));
  std::printf(
      "\nreading: local search finds most feasible witnesses but proves "
      "nothing; EDF/partitioning are sound-one-way baselines; only the "
      "oracle and the CSP solvers decide both ways — and the pipeline row "
      "shows the staged presolve absorbing that work before search.\n");
  return 0;
}
