// Micro-benchmarks (google-benchmark) for the solver internals: domain
// operations, propagation, the dedicated CSP2 node rate, the flow oracle,
// window arithmetic, and instance generation.  These guard the constant
// factors the table benches depend on.
#include <benchmark/benchmark.h>

#include "csp/propagators.hpp"
#include "csp/solver.hpp"
#include "csp2/csp2.hpp"
#include "encodings/csp1.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/jobs.hpp"
#include "support/rng.hpp"

namespace {

using namespace mgrts;

rt::TaskSet example1() {
  return rt::TaskSet::from_params({{0, 1, 2, 2}, {1, 3, 4, 4}, {0, 2, 2, 3}});
}

gen::Instance table1_instance(std::uint64_t index) {
  gen::GeneratorOptions options;
  options.tasks = 10;
  options.processors = 5;
  options.t_max = 7;
  return gen::generate_indexed(options, 20090911, index);
}

void BM_DomainOps(benchmark::State& state) {
  csp::Domain64 d(0, 40);
  std::int64_t acc = 0;
  for (auto _ : state) {
    d = csp::Domain64(0, 40);
    for (csp::Value v = 1; v < 40; v += 3) d.remove(v);
    d.for_each([&](csp::Value v) { acc += v; });
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DomainOps);

void BM_WindowIndexHit(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::WindowIndex windows(ts);
  rt::Time t = 0;
  for (auto _ : state) {
    for (rt::TaskId i = 0; i < ts.size(); ++i) {
      benchmark::DoNotOptimize(windows.hit(i, t));
    }
    t = (t + 1) % ts.hyperperiod();
  }
}
BENCHMARK(BM_WindowIndexHit);

void BM_GeneratorDraw(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table1_instance(k++));
  }
}
BENCHMARK(BM_GeneratorDraw);

void BM_Csp2SolveExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp2::solve(ts, platform));
  }
}
BENCHMARK(BM_Csp2SolveExample1);

void BM_Csp2SolveTable1Instance(benchmark::State& state) {
  // A fixed mid-difficulty Table-I instance (r < 1, decided quickly).
  const gen::Instance inst = table1_instance(3);
  const rt::Platform platform = rt::Platform::identical(inst.processors);
  csp2::Options options;
  options.value_order = csp2::ValueOrder::kDMinusC;
  options.max_nodes = 200'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp2::solve(inst.tasks, platform, options));
  }
}
BENCHMARK(BM_Csp2SolveTable1Instance);

void BM_Csp1BuildExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc::build_csp1(ts, platform));
  }
}
BENCHMARK(BM_Csp1BuildExample1);

void BM_Csp1SolveExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    auto model = enc::build_csp1(ts, platform);
    benchmark::DoNotOptimize(model.solver->solve({}));
  }
}
BENCHMARK(BM_Csp1SolveExample1);

void BM_FlowOracleExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::decide_feasibility(ts, platform));
  }
}
BENCHMARK(BM_FlowOracleExample1);

void BM_FlowOracleTable1Instance(benchmark::State& state) {
  const gen::Instance inst = table1_instance(3);
  const rt::Platform platform = rt::Platform::identical(inst.processors);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::decide_feasibility(inst.tasks, platform));
  }
}
BENCHMARK(BM_FlowOracleTable1Instance);

void BM_PropagationThroughput(benchmark::State& state) {
  // Repeatedly solve a propagation-heavy but search-light model: a column
  // of sum constraints that fix everything at the root.
  for (auto _ : state) {
    csp::Solver solver;
    std::vector<csp::VarId> vars;
    for (int k = 0; k < 64; ++k) vars.push_back(solver.add_variable(0, 1));
    for (int c = 0; c < 16; ++c) {
      std::vector<csp::VarId> scope(vars.begin() + c * 4,
                                    vars.begin() + c * 4 + 4);
      solver.add(csp::make_sum_eq(scope, 4));
    }
    benchmark::DoNotOptimize(solver.solve({}));
  }
}
BENCHMARK(BM_PropagationThroughput);

}  // namespace

BENCHMARK_MAIN();
