// Micro-benchmarks (google-benchmark) for the solver internals: domain
// operations, propagation, the dedicated CSP2 node rate, the flow oracle,
// window arithmetic, and instance generation.  These guard the constant
// factors the table benches depend on.
//
// Besides the google-benchmark suite, main() measures the CSP2 counter-rule
// workload (CountEq + AllDifferentExcept + SymmetryChain on generic-engine
// Table-I instances) in both propagation modes and records nodes/sec and
// propagations/sec into BENCH_micro.json — the incremental-engine speedup
// tracked across PRs.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "core/instance_io.hpp"
#include "core/solve.hpp"
#include "csp/propagators.hpp"
#include "csp/solver.hpp"
#include "csp2/csp2.hpp"
#include "dist/coord.hpp"
#include "dist/worker.hpp"
#include "encodings/csp1.hpp"
#include "exp/sharded.hpp"
#include "encodings/csp2_generic.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/jobs.hpp"
#include "serve/service.hpp"
#include "serve/wire.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace {

using namespace mgrts;

rt::TaskSet example1() {
  return rt::TaskSet::from_params({{0, 1, 2, 2}, {1, 3, 4, 4}, {0, 2, 2, 3}});
}

gen::Instance table1_instance(std::uint64_t index) {
  gen::GeneratorOptions options;
  options.tasks = 10;
  options.processors = 5;
  options.t_max = 7;
  return gen::generate_indexed(options, 20090911, index);
}

void BM_DomainOps(benchmark::State& state) {
  csp::Domain64 d(0, 40);
  std::int64_t acc = 0;
  for (auto _ : state) {
    d = csp::Domain64(0, 40);
    for (csp::Value v = 1; v < 40; v += 3) d.remove(v);
    d.for_each([&](csp::Value v) { acc += v; });
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DomainOps);

void BM_WindowIndexHit(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::WindowIndex windows(ts);
  rt::Time t = 0;
  for (auto _ : state) {
    for (rt::TaskId i = 0; i < ts.size(); ++i) {
      benchmark::DoNotOptimize(windows.hit(i, t));
    }
    t = (t + 1) % ts.hyperperiod();
  }
}
BENCHMARK(BM_WindowIndexHit);

void BM_GeneratorDraw(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table1_instance(k++));
  }
}
BENCHMARK(BM_GeneratorDraw);

void BM_Csp2SolveExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp2::solve(ts, platform));
  }
}
BENCHMARK(BM_Csp2SolveExample1);

void BM_Csp2SolveTable1Instance(benchmark::State& state) {
  // A fixed mid-difficulty Table-I instance (r < 1, decided quickly).
  const gen::Instance inst = table1_instance(3);
  const rt::Platform platform = rt::Platform::identical(inst.processors);
  csp2::Options options;
  options.value_order = csp2::ValueOrder::kDMinusC;
  options.max_nodes = 200'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp2::solve(inst.tasks, platform, options));
  }
}
BENCHMARK(BM_Csp2SolveTable1Instance);

void BM_Csp1BuildExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc::build_csp1(ts, platform));
  }
}
BENCHMARK(BM_Csp1BuildExample1);

void BM_Csp1SolveExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    auto model = enc::build_csp1(ts, platform);
    benchmark::DoNotOptimize(model.solver->solve({}));
  }
}
BENCHMARK(BM_Csp1SolveExample1);

void BM_FlowOracleExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::decide_feasibility(ts, platform));
  }
}
BENCHMARK(BM_FlowOracleExample1);

void BM_FlowOracleTable1Instance(benchmark::State& state) {
  const gen::Instance inst = table1_instance(3);
  const rt::Platform platform = rt::Platform::identical(inst.processors);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::decide_feasibility(inst.tasks, platform));
  }
}
BENCHMARK(BM_FlowOracleTable1Instance);

void BM_PropagationThroughput(benchmark::State& state) {
  // Repeatedly solve a propagation-heavy but search-light model: a column
  // of sum constraints that fix everything at the root.
  for (auto _ : state) {
    csp::Solver solver;
    std::vector<csp::VarId> vars;
    for (int k = 0; k < 64; ++k) vars.push_back(solver.add_variable(0, 1));
    for (int c = 0; c < 16; ++c) {
      std::vector<csp::VarId> scope(vars.begin() + c * 4,
                                    vars.begin() + c * 4 + 4);
      solver.add(csp::make_sum_eq(scope, 4));
    }
    benchmark::DoNotOptimize(solver.solve({}));
  }
}
BENCHMARK(BM_PropagationThroughput);

// ------------------------------------------- CSP2 counter-rule workload
//
// The dominant cost of the paper's hard instances on the generic engine:
// CountEq quota rules over fat (slots × m) scopes plus the per-slot
// AllDifferentExcept columns and symmetry chains.  Solved under a node
// budget so both propagation modes explore the identical tree and the
// metric isolates propagation cost.

csp::SolveStats counter_rule_run(std::uint64_t index,
                                 csp::PropagationMode mode) {
  const gen::Instance inst = table1_instance(index);
  const auto model = enc::build_csp2_generic(
      inst.tasks, rt::Platform::identical(inst.processors));
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kDomWdeg;
  options.val_heuristic = csp::ValHeuristic::kMin;
  options.propagation = mode;
  options.max_nodes = 30'000;
  const csp::SolveOutcome outcome = model.solver->solve(options);
  return outcome.stats;
}

void BM_Csp2CounterRulesIncremental(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter_rule_run(k++ % 8, csp::PropagationMode::kIncremental));
  }
}
BENCHMARK(BM_Csp2CounterRulesIncremental);

void BM_Csp2CounterRulesScratch(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter_rule_run(k++ % 8, csp::PropagationMode::kScratch));
  }
}
BENCHMARK(BM_Csp2CounterRulesScratch);

void BM_Csp2CounterRulesLegacy(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter_rule_run(k++ % 8, csp::PropagationMode::kLegacy));
  }
}
BENCHMARK(BM_Csp2CounterRulesLegacy);

// The fat-scope variant of the counter-rule workload: a CSP2-shaped grid
// (m=8 processors x S=64 slots, 24 tasks, 256-variable CountEq windows plus
// the per-slot AllDifferentExcept columns) searched chronologically, so the
// run is propagation-bound rather than heuristic-bound.  Without symmetry
// chains every mode wakes the same pruning closure, so all three modes
// explore the identical tree and wall time divides out into propagation
// throughput directly.
csp::SolveStats counter_grid_run(csp::PropagationMode mode) {
  constexpr int m = 8, S = 64, n = 24, L = 32, W = 8;
  csp::Solver solver;
  std::vector<csp::VarId> grid;  // slot-major
  grid.reserve(static_cast<std::size_t>(S) * m);
  for (int t = 0; t < S; ++t) {
    for (int j = 0; j < m; ++j) grid.push_back(solver.add_variable(0, n));
  }
  auto var = [&](int t, int j) {
    return grid[static_cast<std::size_t>(t) * m + static_cast<std::size_t>(j)];
  };
  for (int t = 0; t < S; ++t) {
    std::vector<csp::VarId> col;
    col.reserve(m);
    for (int j = 0; j < m; ++j) col.push_back(var(t, j));
    solver.add(csp::make_all_different_except(std::move(col), /*except=*/n));
  }
  for (int i = 0; i < n; ++i) {
    const int start = (i * 7) % (S - L);
    std::vector<csp::VarId> scope;
    scope.reserve(static_cast<std::size_t>(L) * m);
    for (int t = start; t < start + L; ++t) {
      for (int j = 0; j < m; ++j) scope.push_back(var(t, j));
    }
    solver.add(csp::make_count_eq(std::move(scope), /*value=*/i,
                                  /*target=*/W));
  }
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kLex;
  options.val_heuristic = csp::ValHeuristic::kMin;
  options.propagation = mode;
  options.max_nodes = 30'000;
  return solver.solve(options).stats;
}

// ------------------------------------------------ selection-bound workload
//
// Many variables, cheap constraints: pigeonhole blocks (9 variables, 8
// values, all-different) give a search that is all dead ends and whose
// per-node cost is dominated by dom/wdeg variable selection over the
// ~4600-variable unfixed set — propagation is O(new fixes) forward
// checking.  Deterministic tie-breaking keeps kScan and kHeap on the
// identical tree (the SelectionHeap differential test pins this), so
// nodes_per_sec compares the selection data structures directly.

csp::SolveStats selection_run(csp::SelectionMode mode) {
  constexpr int kBlocks = 512;
  constexpr int kPigeons = 9;
  csp::Solver solver;
  for (int b = 0; b < kBlocks; ++b) {
    std::vector<csp::VarId> block;
    block.reserve(kPigeons);
    for (int k = 0; k < kPigeons; ++k) {
      block.push_back(solver.add_variable(0, kPigeons - 2));
    }
    solver.add(csp::make_all_different_except(std::move(block), /*except=*/-1));
  }
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kDomWdeg;
  options.val_heuristic = csp::ValHeuristic::kMin;
  options.selection = mode;
  options.max_nodes = 30'000;
  return solver.solve(options).stats;
}

void report_selection(bench::BenchJson& json, const char* label,
                      csp::SelectionMode mode) {
  const csp::SolveStats stats = selection_run(mode);
  json.record(label)
      .metric("wall_seconds", stats.seconds)
      .metric("nodes", static_cast<double>(stats.nodes))
      .metric("failures", static_cast<double>(stats.failures))
      .metric("nodes_per_sec",
              static_cast<double>(stats.nodes) / stats.seconds);
  std::printf("%-32s %10.3fs  %10.0f nodes/s\n", label, stats.seconds,
              static_cast<double>(stats.nodes) / stats.seconds);
}

// ------------------------------------------------------- portfolio racing
//
// Table-IV-style batch (n = 8, m = m_min, Tmax = 15) under a tight per-run
// budget with paper-faithful lanes.  Baselines and contenders, all
// recorded:
//
//   * the full four-order line-up — what reproducing the paper's tables
//     actually runs, since the winning order is not known a priori;
//   * the post-hoc best single fixed order (an oracle baseline).  PR 2's
//     raw race ("CSP2-portfolio") loses to it on one core: the lanes are
//     correlated ((D-C) dominates per instance) and time-share the CPU;
//   * "CSP2-diverse" — the same race plus the anticorrelated lanes
//     (slack/demand-pruned CSP2, min-conflicts local search), still with
//     no presolve: measures lane diversity alone;
//   * "CSP2-pipeline" — the product configuration: full presolve stages
//     (analysis, flow oracle, csp2-presolve) in front of the diverse race.
//     Its ratio against the post-hoc best order is the gated
//     `portfolio_vs_best_order` headline.  On this workload the large
//     hyperperiods push the flow oracle into its memory guard on some
//     instances, so the probe and the lanes still earn their keep — the
//     honest mechanism behind the number.
//
// Wall totals are per-batch sums of per-instance run times; batch runs are
// sequential (workers = 1), each race oversubscribing one thread per lane.

void report_portfolio(bench::BenchJson& json) {
  exp::BatchOptions options;
  options.generator.tasks = 8;
  options.generator.rule = gen::ProcessorRule::kMinCapacity;
  options.generator.t_max = 15;
  options.instances = 12;
  options.seed = 20090911;
  options.workers = 1;
  const std::int64_t limit_ms = 250;
  constexpr std::size_t kOrders = 4;  // the fixed-order baseline specs

  std::vector<exp::SolverSpec> specs;
  for (const csp2::ValueOrder order : csp2::informed_value_orders()) {
    specs.push_back(exp::csp2_spec(order, limit_ms));
  }
  specs.push_back(exp::portfolio_spec(limit_ms, 1, /*presolve=*/false,
                                      /*diverse_lanes=*/false));
  exp::SolverSpec diverse = exp::portfolio_spec(limit_ms, 1,
                                                /*presolve=*/false,
                                                /*diverse_lanes=*/true);
  diverse.label = "CSP2-diverse";
  specs.push_back(std::move(diverse));
  specs.push_back(exp::portfolio_spec(limit_ms));  // "CSP2-pipeline"

  const exp::BatchResult batch = exp::run_batch(options, specs);
  double best_fixed = 0.0;
  double lineup_total = 0.0;
  std::vector<double> totals(batch.labels.size(), 0.0);
  std::vector<std::int64_t> decided_counts(batch.labels.size(), 0);
  std::int64_t union_decided = 0;
  for (const auto& inst : batch.instances) {
    bool any = false;
    for (std::size_t s = 0; s < kOrders; ++s) {
      any = any || !inst.runs[s].overrun();
    }
    union_decided += any ? 1 : 0;
  }
  for (std::size_t s = 0; s < batch.labels.size(); ++s) {
    double total = 0.0;
    std::int64_t decided = 0;
    std::int64_t solved = 0;
    std::int64_t presolved = 0;
    for (const auto& inst : batch.instances) {
      const exp::RunRecord& run = inst.runs[s];
      total += run.seconds;
      decided += run.overrun() ? 0 : 1;
      solved += run.found_schedule() ? 1 : 0;
      presolved += run.decided_by_presolve() ? 1 : 0;
    }
    totals[s] = total;
    decided_counts[s] = decided;
    if (s < kOrders) {
      lineup_total += total;
      if (best_fixed == 0.0 || total < best_fixed) best_fixed = total;
    }
    json.record("portfolio_t4_" + batch.labels[s])
        .metric("wall_seconds_total", total)
        .metric("decided", static_cast<double>(decided))
        .metric("solved", static_cast<double>(solved))
        .metric("presolve_decided", static_cast<double>(presolved));
    std::printf("%-32s %10.3fs total  %2lld decided  %2lld solved  "
                "%2lld by presolve\n",
                batch.labels[s].c_str(), total,
                static_cast<long long>(decided),
                static_cast<long long>(solved),
                static_cast<long long>(presolved));
  }
  const double portfolio_total = totals[kOrders];
  const double diverse_total = totals[kOrders + 1];
  const double pipeline_total = totals[kOrders + 2];
  json.record("portfolio_t4_summary")
      .metric("lineup_wall_seconds", lineup_total)
      .metric("best_fixed_wall_seconds", best_fixed)
      .metric("portfolio_wall_seconds", portfolio_total)
      .metric("diverse_wall_seconds", diverse_total)
      .metric("pipeline_wall_seconds", pipeline_total)
      .metric("portfolio_decided",
              static_cast<double>(decided_counts[kOrders]))
      .metric("diverse_decided",
              static_cast<double>(decided_counts[kOrders + 1]))
      .metric("pipeline_decided",
              static_cast<double>(decided_counts[kOrders + 2]))
      .metric("lineup_union_decided", static_cast<double>(union_decided))
      .metric("speedup_vs_lineup", lineup_total / portfolio_total)
      .metric("speedup_vs_best_fixed", best_fixed / portfolio_total)
      .metric("portfolio_vs_best_order", best_fixed / pipeline_total)
      .metric("hardware_threads",
              static_cast<double>(std::thread::hardware_concurrency()));
  std::printf(
      "%-32s lineup %.3fs / best fixed %.3fs vs raw race %.3fs, diverse "
      "%.3fs, pipeline %.3fs (%.2fx vs lineup, %.2fx vs best fixed, "
      "pipeline %.2fx vs best order)\n",
      "portfolio_t4_summary", lineup_total, best_fixed, portfolio_total,
      diverse_total, pipeline_total, lineup_total / portfolio_total,
      best_fixed / portfolio_total, best_fixed / pipeline_total);
}

// ---------------------------------------------------- pipeline residue
//
// Where nogood learning now matters: since the presolve pipeline absorbs
// the easy Table-I stream, solver throughput only counts on the *residue*
// of instances `csp2-presolve` leaves undecided.  The probe disables the
// flow oracle (modelling the heterogeneous / memory-guarded regimes where
// a search residue actually exists — on identical platforms the exact
// oracle would absorb everything) and trims the csp2-presolve node budget,
// then generic-engine nogood lanes race over the surviving indices: true
// 1-UIP learning under chronological retry, decision-set learning (the
// PR-4 baseline), shrinking off, the always-on differential, the 1-UIP
// configuration with the slot-column AllDifferentExcept raised to
// Régin-style matching GAC (DESIGN.md §14), and the 1-UIP configuration
// with non-chronological backjumping + recursive minimization — the
// production defaults (DESIGN.md §15).  Gated ledger entries:
// `residue_nodes_per_sec` (1-UIP lane throughput), `nogood_shrink_ratio`
// (recorded/raw literal ratio, lower is better), `uip_clause_len_ratio`
// (1-UIP vs decision-set clause length for the same conflicts, lower is
// better and <= 1.0 by construction), `alldiff_prune_strength`
// (forward-check vs matching nodes-to-verdict — how much tree the GAC
// level saves per decisive answer, higher is better) and
// `backjump_nodes_per_verdict_ratio` (backjump-lane vs decision-set
// nodes-to-verdict, lower is better — CDCL's payoff per decisive
// answer).  The residue set is reproducible across PRs from the
// --seed flag (default 20090911); exp::residue_spec re-derives it
// anywhere.

void report_residue(bench::BenchJson& json, std::uint64_t seed) {
  exp::BatchOptions options;
  options.generator = bench::paper_workload_small();
  options.instances = 64;
  options.seed = seed;
  options.workers = 1;
  const std::int64_t limit_ms = 400;

  const exp::ResidueSpec residue = exp::residue_spec(
      options, exp::presolve_probe_spec(limit_ms, /*flow_oracle=*/false,
                                        /*presolve_max_nodes=*/500));
  std::printf("%-32s %2lld of %lld instances survive presolve\n",
              "residue_probe",
              static_cast<long long>(residue.indices().size()),
              static_cast<long long>(residue.probed));
  if (residue.indices().empty()) {
    // Empty indices means "full stream" to run_batch, so racing here would
    // silently measure the wrong workload and poison the gated entries.
    json.record("residue_summary").metric("residue_instances", 0.0);
    std::printf("%-32s presolve absorbed everything at this seed; "
                "residue race skipped\n", "residue_summary");
    return;
  }

  auto lane = [&](const char* label, bool shrink, csp::NogoodLearn learn) {
    exp::SolverSpec spec;
    spec.label = label;
    spec.config.method = core::Method::kCsp2Generic;
    spec.config.time_limit_ms = limit_ms;
    spec.config.pipeline = core::PipelineOptions::none();
    spec.config.generic = core::choco_like_defaults(seed);
    spec.config.generic.nogoods = true;
    spec.config.generic.nogood_shrink = shrink;
    spec.config.generic.nogood_learn = learn;
    // Lanes 0-4 are the historical chronological configurations; pinning
    // the knobs keeps their ledger lines comparable across PRs now that
    // SearchOptions defaults both to on.  The backjump lane re-enables
    // them below.
    spec.config.generic.backjump = false;
    spec.config.generic.nogood_minimize = false;
    return spec;
  };
  // The 4th lane re-runs the 1-UIP configuration with the decision-set
  // differential forced on every conflict (nogood_ds_sample = 1) instead of
  // the sampled default.  Both walks are pure observers, so per node the
  // trees are identical; under the shared wall budget the always-on lane
  // just covers fewer of them — the nodes/sec gap is the overhead the
  // sampling knob recovers.
  exp::SolverSpec ds_always =
      lane("residue-ds-always", true, csp::NogoodLearn::kUip1);
  ds_always.config.generic.nogood_ds_sample = 1;
  // The 5th lane re-runs the default 1-UIP configuration with the slot
  // columns' AllDifferentExcept raised from forward checking to matching
  // GAC; everything else identical, so verdict_nodes[0]/verdict_nodes[4]
  // is the pruning strength the matching level buys per decisive answer.
  exp::SolverSpec matching =
      lane("residue-matching", true, csp::NogoodLearn::kUip1);
  matching.config.csp2_generic.alldiff_level =
      csp::PropagationLevel::kMatching;
  // The 6th lane is the 1-UIP configuration with the asserting-clause
  // machinery switched on (DESIGN.md §15): non-chronological backjumping
  // to the assertion level plus recursive self-subsumption minimization —
  // i.e. the SearchOptions defaults every production consumer now runs.
  // verdict_nodes[5]/verdict_nodes[1] is the gated
  // backjump_nodes_per_verdict_ratio (CDCL's payoff per decisive answer
  // vs the decision-set baseline, lower is better).
  exp::SolverSpec backjump =
      lane("residue-backjump", true, csp::NogoodLearn::kUip1);
  backjump.config.generic.backjump = true;
  backjump.config.generic.nogood_minimize = true;
  const exp::BatchResult batch = exp::run_batch(
      residue.batch,
      {lane("residue-1uip", true, csp::NogoodLearn::kUip1),
       lane("residue-dset", true, csp::NogoodLearn::kDecisionSet),
       lane("residue-shrink-off", false, csp::NogoodLearn::kUip1),
       std::move(ds_always), std::move(matching), std::move(backjump)});
  const char* names[] = {"residue_1uip", "residue_dset",
                         "residue_shrink_off", "residue_ds_always",
                         "residue_matching", "residue_backjump"};

  double nodes_per_sec_uip = 0.0;
  double shrink_ratio_uip = 1.0;
  double uip_len_ratio = 1.0;
  std::vector<double> lane_nps(batch.labels.size(), 0.0);
  std::vector<double> verdict_nodes(batch.labels.size(), 0.0);
  for (std::size_t s = 0; s < batch.labels.size(); ++s) {
    double wall = 0.0;
    std::int64_t nodes = 0;
    std::int64_t decided = 0;
    core::NogoodStats learn;
    for (const auto& inst : batch.instances) {
      const exp::RunRecord& run = inst.runs[s];
      wall += run.seconds;
      nodes += run.nodes;
      decided += run.overrun() ? 0 : 1;
      learn.recorded += run.nogoods.recorded;
      learn.replay_hits += run.nogoods.replay_hits;
      learn.lits_before += run.nogoods.lits_before;
      learn.lits_after += run.nogoods.lits_after;
      learn.lits_uip += run.nogoods.lits_uip;
      learn.lits_ds += run.nogoods.lits_ds;
      learn.subsumed += run.nogoods.subsumed;
      learn.lbd_refreshed += run.nogoods.lbd_refreshed;
      learn.backjumps += run.nogoods.backjumps;
      learn.backjump_levels_saved += run.nogoods.backjump_levels_saved;
      learn.lits_minimized += run.nogoods.lits_minimized;
    }
    const double nodes_per_sec =
        wall > 0.0 ? static_cast<double>(nodes) / wall : 0.0;
    // Nodes-to-verdict: how much tree a decisive answer costs on average
    // (the budget-insensitive view of pruning strength).
    const double nodes_to_verdict =
        decided > 0 ? static_cast<double>(nodes) /
                          static_cast<double>(decided)
                    : static_cast<double>(nodes);
    lane_nps[s] = nodes_per_sec;
    verdict_nodes[s] = nodes_to_verdict;
    if (s == 0) {
      nodes_per_sec_uip = nodes_per_sec;
      shrink_ratio_uip = learn.shrink_ratio();
      uip_len_ratio = learn.uip_len_ratio();
    }
    auto& record = json.record(names[s]);
    record.metric("wall_seconds_total", wall)
        .metric("nodes", static_cast<double>(nodes))
        .metric("decided", static_cast<double>(decided))
        .metric("nodes_per_sec", nodes_per_sec)
        .metric("nodes_to_verdict", nodes_to_verdict)
        .metric("nogoods_recorded", static_cast<double>(learn.recorded))
        .metric("nogood_replay_hits",
                static_cast<double>(learn.replay_hits))
        .metric("nogoods_subsumed", static_cast<double>(learn.subsumed))
        .metric("nogood_lbd_refreshes",
                static_cast<double>(learn.lbd_refreshed))
        .metric("shrink_ratio", learn.shrink_ratio());
    if (s == 0) record.metric("uip_clause_len_ratio", uip_len_ratio);
    if (s == 5) {
      record.metric("backjumps", static_cast<double>(learn.backjumps))
          .metric("backjump_levels_saved",
                  static_cast<double>(learn.backjump_levels_saved))
          .metric("nogood_lits_minimized",
                  static_cast<double>(learn.lits_minimized));
    }
    std::printf("%-32s %10.3fs  %8lld nodes  %2lld decided  "
                "%6.0f nodes/verdict  shrink %.2f  uip/ds %.2f\n",
                batch.labels[s].c_str(), wall,
                static_cast<long long>(nodes),
                static_cast<long long>(decided), nodes_to_verdict,
                learn.shrink_ratio(), learn.uip_len_ratio());
  }
  json.record("residue_summary")
      .metric("residue_instances",
              static_cast<double>(residue.indices().size()))
      .metric("residue_nodes_per_sec", nodes_per_sec_uip)
      .metric("nogood_shrink_ratio", shrink_ratio_uip)
      .metric("uip_clause_len_ratio", uip_len_ratio)
      .metric("nodes_to_verdict_uip", verdict_nodes[0])
      .metric("nodes_to_verdict_dset", verdict_nodes[1])
      .metric("nodes_to_verdict_off", verdict_nodes[2])
      .metric("verdict_cost_vs_dset",
              verdict_nodes[1] > 0.0 ? verdict_nodes[0] / verdict_nodes[1]
                                     : 1.0)
      .metric("verdict_cost_vs_off",
              verdict_nodes[2] > 0.0 ? verdict_nodes[0] / verdict_nodes[2]
                                     : 1.0)
      .metric("ds_sample_speedup",
              lane_nps[3] > 0.0 ? lane_nps[0] / lane_nps[3] : 1.0)
      .metric("alldiff_prune_strength",
              verdict_nodes[4] > 0.0 ? verdict_nodes[0] / verdict_nodes[4]
                                     : 1.0)
      .metric("nodes_to_verdict_backjump", verdict_nodes[5])
      .metric("backjump_nodes_per_verdict_ratio",
              verdict_nodes[1] > 0.0 ? verdict_nodes[5] / verdict_nodes[1]
                                     : 1.0);
  std::printf("%-32s 1-UIP costs %.2fx the nodes per verdict of the "
              "decision set, %.2fx of shrink-off (shrink %.2f, uip/ds "
              "length %.2f); sampling the differential runs %.2fx the "
              "always-on rate; matching GAC prunes %.2fx the FC tree per "
              "verdict; backjumping spends %.2fx the decision-set nodes "
              "per verdict\n",
              "residue_summary",
              verdict_nodes[1] > 0.0 ? verdict_nodes[0] / verdict_nodes[1]
                                     : 1.0,
              verdict_nodes[2] > 0.0 ? verdict_nodes[0] / verdict_nodes[2]
                                     : 1.0,
              shrink_ratio_uip, uip_len_ratio,
              lane_nps[3] > 0.0 ? lane_nps[0] / lane_nps[3] : 1.0,
              verdict_nodes[4] > 0.0 ? verdict_nodes[0] / verdict_nodes[4]
                                     : 1.0,
              verdict_nodes[1] > 0.0 ? verdict_nodes[5] / verdict_nodes[1]
                                     : 1.0);
}

// --------------------------------------------------- hardened-layer cost
//
// The fault-injection hooks shadow the hot-path guards (variable budget,
// table allocations, deadline polls; DESIGN.md §12).  Disarmed each hook
// costs one relaxed atomic load; armed-but-idle (rate 0.0, every site
// selected) it additionally pays the per-site evaluation counter — the
// worst case the hardened layer can ever charge a fault-free run.
// `residue_faultfree_overhead` is the armed-idle / disarmed wall ratio on
// a deterministic node-budgeted generic-engine workload, best-of-3 per
// mode; the regression gate pins it near 1.0 (lower is better) so the
// hardening cannot silently tax residue throughput.

void report_fault_overhead(bench::BenchJson& json, std::uint64_t seed) {
  std::vector<gen::Instance> instances;
  for (std::uint64_t idx = 0; idx < 6; ++idx) {
    instances.push_back(
        gen::generate_indexed(bench::paper_workload_small(), seed, idx));
  }
  const auto sweep = [&] {
    double wall = 0.0;
    for (const gen::Instance& inst : instances) {
      core::SolveConfig config;
      config.method = core::Method::kCsp2Generic;
      config.max_nodes = 20'000;
      config.pipeline = core::PipelineOptions::none();
      config.generic = core::choco_like_defaults(seed);
      config.generic.nogoods = true;
      const core::SolveReport report = core::solve_instance(
          inst.tasks, rt::Platform::identical(inst.processors), config);
      wall += report.seconds;
    }
    return wall;
  };

  support::FaultPlan plan;
  plan.seed = seed;
  plan.rate = 0.0;  // armed but idle: hooks evaluate, nothing ever fires
  plan.sites = ~std::uint32_t{0};

  // Interleave the modes (disarmed, armed, disarmed, ...) so slow machine
  // drift hits both equally, and keep the best sweep per mode.
  sweep();  // warmup: touch code + allocator before either mode is timed
  double disarmed = 0.0;
  double armed = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const double cold = sweep();
    disarmed = rep == 0 ? cold : std::min(disarmed, cold);
    support::FaultInjector::arm(plan);
    const double hot = sweep();
    support::FaultInjector::disarm();
    armed = rep == 0 ? hot : std::min(armed, hot);
  }

  const double overhead = disarmed > 0.0 ? armed / disarmed : 1.0;
  json.record("residue_faultfree_overhead")
      .metric("wall_seconds_disarmed", disarmed)
      .metric("wall_seconds_armed_idle", armed)
      .metric("residue_faultfree_overhead", overhead);
  std::printf("%-32s %.3fs disarmed vs %.3fs armed-idle -> %.3fx\n",
              "residue_faultfree_overhead", disarmed, armed, overhead);
}

// --------------------------------------------------- presolve absorption
//
// How much of the Table-I workload do the presolve stages settle before
// the search backend runs at all?  `presolve_decided_fraction` is the
// gated ledger rate; the no-flow variant shows what the analysis tests and
// the node-budgeted csp2 probe absorb when the polynomial oracle is
// unavailable (heterogeneous platforms, memory-guarded hyperperiods).

void report_pipeline(bench::BenchJson& json) {
  exp::BatchOptions options;
  options.generator.tasks = 10;
  options.generator.processors = 5;
  options.generator.t_max = 7;
  options.instances = 40;
  options.seed = 20090911;
  options.workers = 1;
  const std::int64_t limit_ms = 250;

  exp::SolverSpec full = exp::pipeline_spec(limit_ms);
  exp::SolverSpec no_flow = exp::pipeline_spec(limit_ms);
  no_flow.label = "pipeline-noflow";
  no_flow.config.pipeline.flow_oracle = false;

  const exp::BatchResult batch =
      exp::run_batch(options, {std::move(full), std::move(no_flow)});
  const char* names[] = {"pipeline_presolve", "pipeline_presolve_noflow"};
  for (std::size_t s = 0; s < batch.labels.size(); ++s) {
    std::int64_t decided = 0;
    std::int64_t presolved = 0;
    double total = 0.0;
    for (const auto& inst : batch.instances) {
      const exp::RunRecord& run = inst.runs[s];
      total += run.seconds;
      decided += run.overrun() ? 0 : 1;
      presolved += run.decided_by_presolve() ? 1 : 0;
    }
    const auto count = static_cast<double>(batch.instances.size());
    json.record(names[s])
        .metric("instances", count)
        .metric("decided", static_cast<double>(decided))
        .metric("presolve_decided", static_cast<double>(presolved))
        .metric("presolve_decided_fraction",
                static_cast<double>(presolved) / count)
        .metric("wall_seconds_total", total);
    std::printf("%-32s %10.3fs total  %2lld decided, %2lld by presolve "
                "(%.2f of batch)\n",
                names[s], total, static_cast<long long>(decided),
                static_cast<long long>(presolved),
                static_cast<double>(presolved) / count);
  }
}

/// Sums the counter-rule workload over a fixed instance block and records
/// throughput under `label` into the json report.
void report_counter_rules(bench::BenchJson& json, const char* label,
                          csp::PropagationMode mode) {
  csp::SolveStats total;
  for (std::uint64_t k = 0; k < 8; ++k) {
    const csp::SolveStats stats = counter_rule_run(k, mode);
    total.nodes += stats.nodes;
    total.propagations += stats.propagations;
    total.events += stats.events;
    total.seconds += stats.seconds;
  }
  json.record(label)
      .metric("wall_seconds", total.seconds)
      .metric("nodes", static_cast<double>(total.nodes))
      .metric("propagations", static_cast<double>(total.propagations))
      .metric("events", static_cast<double>(total.events))
      .metric("nodes_per_sec",
              static_cast<double>(total.nodes) / total.seconds)
      .metric("propagations_per_sec",
              static_cast<double>(total.propagations) / total.seconds);
  std::printf("%-32s %10.3fs  %12.0f props/s  %10.0f nodes/s\n", label,
              total.seconds,
              static_cast<double>(total.propagations) / total.seconds,
              static_cast<double>(total.nodes) / total.seconds);
}

}  // namespace

// ------------------------------------------------------- serving latency
//
// The resident daemon's request handler on a repeat-heavy mix: a pool of
// instances queried over and over in three orientations (original, task-
// permuted, gcd-rescaled), which is exactly the traffic the canonicalized
// verdict cache exists for.  Requests run through Service::handle — the
// full payload parse -> canonical key -> cache/solve -> format funnel the
// socket server uses, minus only the transport.  `serve_requests_per_sec`
// and the p50/p99 (gated lower-is-better) track the serving hot path;
// `serve_cache_hit_ratio` pins the canonicalization: permuted and rescaled
// duplicates MUST keep hitting, so a key regression shows up as a falling
// ratio long before anyone notices slow daemons.

void report_serve(bench::BenchJson& json, std::uint64_t seed) {
  constexpr int kPoolSize = 12;
  constexpr int kRounds = 160;  // kPoolSize * 3 orientations * kRounds asks

  gen::GeneratorOptions g;
  g.tasks = 6;
  g.processors = 3;
  g.t_max = 5;

  // Three payload orientations per instance, pre-formatted once — the
  // bench measures serving, not snprintf.
  std::vector<std::string> payloads;
  for (std::uint64_t idx = 0; idx < kPoolSize; ++idx) {
    const gen::Instance inst = gen::generate_indexed(g, seed, idx);
    const rt::Platform platform = rt::Platform::identical(inst.processors);

    std::vector<rt::TaskParams> params;
    for (rt::TaskId i = 0; i < inst.tasks.size(); ++i) {
      params.push_back({inst.tasks[i].offset(), inst.tasks[i].wcet(),
                        inst.tasks[i].deadline(), inst.tasks[i].period()});
    }
    std::vector<rt::TaskParams> rotated = params;
    std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
    std::vector<rt::TaskParams> scaled;
    for (const rt::TaskParams& p : params) {
      scaled.push_back(
          {p.offset * 3, p.wcet * 3, p.deadline * 3, p.period * 3});
    }

    for (const auto& variant :
         {params, rotated, scaled}) {
      serve::Message request;
      request.kind = "solve";
      request.body = core::write_instance_string(
          rt::TaskSet::from_params(variant, inst.tasks.model()), platform);
      payloads.push_back(serve::format_message(request));
    }
  }

  serve::ServiceOptions options;
  options.latency_window = payloads.size() * kRounds;
  serve::Service service(options);

  support::Stopwatch watch;
  for (int round = 0; round < kRounds; ++round) {
    for (const std::string& payload : payloads) {
      const std::string response = service.handle(payload);
      benchmark::DoNotOptimize(response.data());
    }
  }
  const double wall = watch.seconds();

  const auto total =
      static_cast<double>(payloads.size()) * static_cast<double>(kRounds);
  const serve::LatencyStats lat = service.latency();
  const double hit_ratio = service.cache_stats().hit_ratio();
  json.record("serve_repeat_mix")
      .metric("requests", total)
      .metric("wall_seconds", wall)
      .metric("serve_requests_per_sec", wall > 0.0 ? total / wall : 0.0)
      .metric("serve_cache_hit_ratio", hit_ratio)
      .metric("serve_p50_us", static_cast<double>(lat.p50_us))
      .metric("serve_p99_us", static_cast<double>(lat.p99_us));
  std::printf("%-32s %7.0f req in %.3fs -> %8.0f req/s, cache hit %.3f, "
              "p50 %lld us, p99 %lld us\n",
              "serve_repeat_mix", total, wall,
              wall > 0.0 ? total / wall : 0.0, hit_ratio,
              static_cast<long long>(lat.p50_us),
              static_cast<long long>(lat.p99_us));
}

// ------------------------------------------------ distributed shard scaling
//
// The tentpole ledger of the coordinator/worker fleet: the same overrun-
// dominated index list run single-box (workerless run_batch_sharded — the
// serialized reference path) and across two in-process worker daemons.
// Overrun runs burn their *wall* budget, not a core, so two workers
// overlap them even on one CPU — that overlap is shard_scaling_2w, gated
// with an absolute floor of 1.6 in check_bench_regression.py.
//
// Calibration keeps the comparison honest on any box: the workload is
// only indices whose CSP1 run still overruns at DOUBLE the measured
// budget, so no run sits near the decide/overrun boundary and the two
// paths must agree on every verdict (dist_record_mismatches pins it).
void report_dist(bench::BenchJson& json, std::uint64_t seed) {
  // The budget must dwarf the deadline-poll overshoot: an overrun run
  // stops at its next poll AFTER the budget expires, and under 2-way CPU
  // timesharing the polls come ~2x further apart in wall time.  At 500ms
  // the overshoot is a small fraction on both paths, so the measured
  // overlap sits well clear of the 1.6x gate floor (250ms left it
  // straddling the line run to run).
  constexpr std::int64_t kBudgetMs = 500;
  constexpr std::int64_t kScreenMs = 2 * kBudgetMs;
  constexpr std::size_t kWanted = 12;
  constexpr std::uint64_t kScanCap = 64;

  exp::BatchOptions batch;
  batch.generator.tasks = 10;  // the Table-I workload
  batch.generator.processors = 5;
  batch.generator.t_max = 7;
  batch.seed = seed;

  const exp::SolverSpec screen = *exp::spec_from_name("csp1", kScreenMs, seed);
  std::vector<std::uint64_t> hard;
  for (std::uint64_t idx = 0; idx < kScanCap && hard.size() < kWanted; ++idx) {
    const gen::Instance inst =
        gen::generate_indexed(batch.generator, seed, idx);
    core::SolveConfig config = screen.config;
    exp::reseed_for_index(config, idx);
    const core::SolveReport report = core::solve_instance(
        inst.tasks, rt::Platform::identical(inst.processors), config);
    if (!core::decisive(report.verdict, report.complete)) hard.push_back(idx);
  }
  batch.indices = hard;
  if (hard.size() < 2) {
    std::printf("dist_shard_scaling: only %zu overrun instances in the "
                "first %llu draws; skipping the lane\n",
                hard.size(), static_cast<unsigned long long>(kScanCap));
    return;
  }

  const std::vector<std::string> lineup = {"csp1"};

  dist::FleetStats single_stats;
  support::Stopwatch single_watch;
  const exp::BatchResult single = exp::run_batch_sharded(
      batch, lineup, kBudgetMs, dist::FleetOptions{}, &single_stats);
  const double wall_single = single_watch.seconds();

  std::vector<std::unique_ptr<dist::WorkerServer>> workers;
  dist::FleetOptions fleet;
  for (int w = 0; w < 2; ++w) {
    dist::WorkerOptions options;
    options.socket_path = "/tmp/mgrts_bench_dist_" + std::to_string(w) + "_" +
                          std::to_string(::getpid()) + ".sock";
    workers.push_back(std::make_unique<dist::WorkerServer>(options));
    workers.back()->start();
    fleet.workers.push_back(options.socket_path);
  }
  fleet.shards = 2;  // one slice per worker: pure overlap, no churn

  dist::FleetStats stats;
  support::Stopwatch fleet_watch;
  const exp::BatchResult sharded =
      exp::run_batch_sharded(batch, lineup, kBudgetMs, fleet, &stats);
  const double wall_2w = fleet_watch.seconds();
  for (auto& worker : workers) worker->stop();

  std::int64_t mismatches = 0;
  for (std::size_t k = 0; k < single.instances.size(); ++k) {
    const exp::RunRecord& a = single.instances[k].runs[0];
    const exp::RunRecord& b = sharded.instances[k].runs[0];
    if (a.verdict != b.verdict || a.complete != b.complete ||
        a.failure_cause != b.failure_cause) {
      ++mismatches;
    }
  }

  const double scaling = wall_2w > 0.0 ? wall_single / wall_2w : 0.0;
  json.record("dist_shard_scaling")
      .metric("instances", static_cast<double>(hard.size()))
      .metric("wall_single_seconds", wall_single)
      .metric("wall_2w_seconds", wall_2w)
      .metric("shard_scaling_2w", scaling)
      .metric("dist_record_mismatches", static_cast<double>(mismatches))
      .metric("dist_redispatched", static_cast<double>(stats.redispatched))
      .metric("dist_duplicate_rows",
              static_cast<double>(stats.duplicate_rows));
  std::printf("%-32s %2zu overruns  single %.3fs  2w %.3fs  -> %.2fx "
              "(mismatches %lld, redispatched %d)\n",
              "dist_shard_scaling", hard.size(), wall_single, wall_2w,
              scaling, static_cast<long long>(mismatches),
              stats.redispatched);
}

int main(int argc, char** argv) {
  // --seed N / --seed=N pins the residue workload's generator stream (so
  // the residue set is reproducible across PRs); strip it before handing
  // argv to google-benchmark, which rejects flags it does not know.
  std::uint64_t seed = 20090911;
  int kept = 1;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--seed" && k + 1 < argc) {
      seed = std::strtoull(argv[++k], nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      argv[kept++] = argv[k];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n== CSP2 counter-rule workload (BENCH_micro.json) ==\n");
  // incremental vs scratch isolates the trailed-counter fast path (same
  // wake sets, identical tree); incremental vs legacy is the speedup over
  // the pre-change engine (wake-on-any-change, full rescans).  The three
  // grid records explore the identical tree, so `propagations_per_sec` of
  // the incremental entry against `useful_propagations_per_sec` of the
  // legacy entry (canonical propagation count / wall) is the engine
  // speedup tracked across PRs.
  bench::BenchJson json("micro");
  report_counter_rules(json, "csp2_counter_rules_incremental",
                       csp::PropagationMode::kIncremental);
  report_counter_rules(json, "csp2_counter_rules_scratch",
                       csp::PropagationMode::kScratch);
  report_counter_rules(json, "csp2_counter_rules_legacy",
                       csp::PropagationMode::kLegacy);

  const csp::SolveStats canonical =
      counter_grid_run(csp::PropagationMode::kIncremental);
  for (const auto& [label, mode] :
       {std::pair{"counter_grid_incremental",
                  csp::PropagationMode::kIncremental},
        std::pair{"counter_grid_scratch", csp::PropagationMode::kScratch},
        std::pair{"counter_grid_legacy", csp::PropagationMode::kLegacy}}) {
    const csp::SolveStats stats =
        mode == csp::PropagationMode::kIncremental ? canonical
                                                   : counter_grid_run(mode);
    json.record(label)
        .metric("wall_seconds", stats.seconds)
        .metric("nodes", static_cast<double>(stats.nodes))
        .metric("propagations", static_cast<double>(stats.propagations))
        .metric("events", static_cast<double>(stats.events))
        .metric("nodes_per_sec",
                static_cast<double>(stats.nodes) / stats.seconds)
        .metric("propagations_per_sec",
                static_cast<double>(stats.propagations) / stats.seconds)
        .metric("useful_propagations_per_sec",
                static_cast<double>(canonical.propagations) / stats.seconds);
    std::printf("%-32s %10.3fs  %12.0f useful-props/s  %10.0f nodes/s\n",
                label, stats.seconds,
                static_cast<double>(canonical.propagations) / stats.seconds,
                static_cast<double>(stats.nodes) / stats.seconds);
  }

  std::printf("\n== selection-bound workload (scan vs heap) ==\n");
  report_selection(json, "selection_scan", csp::SelectionMode::kScan);
  report_selection(json, "selection_heap", csp::SelectionMode::kHeap);

  std::printf("\n== nogood shrinking on the pipeline residue ==\n");
  report_residue(json, seed);

  std::printf("\n== hardened-layer fault-free overhead ==\n");
  report_fault_overhead(json, seed);

  std::printf("\n== portfolio racing vs fixed value orders ==\n");
  report_portfolio(json);

  std::printf("\n== pipeline presolve absorption (Table-I workload) ==\n");
  report_pipeline(json);

  std::printf("\n== serving latency on a repeat-heavy mix ==\n");
  report_serve(json, seed);

  std::printf("\n== distributed shard scaling (2 workers, 1 box) ==\n");
  report_dist(json, seed);

  json.write();
  return 0;
}
