// Micro-benchmarks (google-benchmark) for the solver internals: domain
// operations, propagation, the dedicated CSP2 node rate, the flow oracle,
// window arithmetic, and instance generation.  These guard the constant
// factors the table benches depend on.
//
// Besides the google-benchmark suite, main() measures the CSP2 counter-rule
// workload (CountEq + AllDifferentExcept + SymmetryChain on generic-engine
// Table-I instances) in both propagation modes and records nodes/sec and
// propagations/sec into BENCH_micro.json — the incremental-engine speedup
// tracked across PRs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "csp/propagators.hpp"
#include "csp/solver.hpp"
#include "csp2/csp2.hpp"
#include "encodings/csp1.hpp"
#include "encodings/csp2_generic.hpp"
#include "flow/oracle.hpp"
#include "gen/generator.hpp"
#include "rt/jobs.hpp"
#include "support/rng.hpp"

namespace {

using namespace mgrts;

rt::TaskSet example1() {
  return rt::TaskSet::from_params({{0, 1, 2, 2}, {1, 3, 4, 4}, {0, 2, 2, 3}});
}

gen::Instance table1_instance(std::uint64_t index) {
  gen::GeneratorOptions options;
  options.tasks = 10;
  options.processors = 5;
  options.t_max = 7;
  return gen::generate_indexed(options, 20090911, index);
}

void BM_DomainOps(benchmark::State& state) {
  csp::Domain64 d(0, 40);
  std::int64_t acc = 0;
  for (auto _ : state) {
    d = csp::Domain64(0, 40);
    for (csp::Value v = 1; v < 40; v += 3) d.remove(v);
    d.for_each([&](csp::Value v) { acc += v; });
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_DomainOps);

void BM_WindowIndexHit(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::WindowIndex windows(ts);
  rt::Time t = 0;
  for (auto _ : state) {
    for (rt::TaskId i = 0; i < ts.size(); ++i) {
      benchmark::DoNotOptimize(windows.hit(i, t));
    }
    t = (t + 1) % ts.hyperperiod();
  }
}
BENCHMARK(BM_WindowIndexHit);

void BM_GeneratorDraw(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table1_instance(k++));
  }
}
BENCHMARK(BM_GeneratorDraw);

void BM_Csp2SolveExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp2::solve(ts, platform));
  }
}
BENCHMARK(BM_Csp2SolveExample1);

void BM_Csp2SolveTable1Instance(benchmark::State& state) {
  // A fixed mid-difficulty Table-I instance (r < 1, decided quickly).
  const gen::Instance inst = table1_instance(3);
  const rt::Platform platform = rt::Platform::identical(inst.processors);
  csp2::Options options;
  options.value_order = csp2::ValueOrder::kDMinusC;
  options.max_nodes = 200'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(csp2::solve(inst.tasks, platform, options));
  }
}
BENCHMARK(BM_Csp2SolveTable1Instance);

void BM_Csp1BuildExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc::build_csp1(ts, platform));
  }
}
BENCHMARK(BM_Csp1BuildExample1);

void BM_Csp1SolveExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    auto model = enc::build_csp1(ts, platform);
    benchmark::DoNotOptimize(model.solver->solve({}));
  }
}
BENCHMARK(BM_Csp1SolveExample1);

void BM_FlowOracleExample1(benchmark::State& state) {
  const rt::TaskSet ts = example1();
  const rt::Platform platform = rt::Platform::identical(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::decide_feasibility(ts, platform));
  }
}
BENCHMARK(BM_FlowOracleExample1);

void BM_FlowOracleTable1Instance(benchmark::State& state) {
  const gen::Instance inst = table1_instance(3);
  const rt::Platform platform = rt::Platform::identical(inst.processors);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::decide_feasibility(inst.tasks, platform));
  }
}
BENCHMARK(BM_FlowOracleTable1Instance);

void BM_PropagationThroughput(benchmark::State& state) {
  // Repeatedly solve a propagation-heavy but search-light model: a column
  // of sum constraints that fix everything at the root.
  for (auto _ : state) {
    csp::Solver solver;
    std::vector<csp::VarId> vars;
    for (int k = 0; k < 64; ++k) vars.push_back(solver.add_variable(0, 1));
    for (int c = 0; c < 16; ++c) {
      std::vector<csp::VarId> scope(vars.begin() + c * 4,
                                    vars.begin() + c * 4 + 4);
      solver.add(csp::make_sum_eq(scope, 4));
    }
    benchmark::DoNotOptimize(solver.solve({}));
  }
}
BENCHMARK(BM_PropagationThroughput);

// ------------------------------------------- CSP2 counter-rule workload
//
// The dominant cost of the paper's hard instances on the generic engine:
// CountEq quota rules over fat (slots × m) scopes plus the per-slot
// AllDifferentExcept columns and symmetry chains.  Solved under a node
// budget so both propagation modes explore the identical tree and the
// metric isolates propagation cost.

csp::SolveStats counter_rule_run(std::uint64_t index,
                                 csp::PropagationMode mode) {
  const gen::Instance inst = table1_instance(index);
  const auto model = enc::build_csp2_generic(
      inst.tasks, rt::Platform::identical(inst.processors));
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kDomWdeg;
  options.val_heuristic = csp::ValHeuristic::kMin;
  options.propagation = mode;
  options.max_nodes = 30'000;
  const csp::SolveOutcome outcome = model.solver->solve(options);
  return outcome.stats;
}

void BM_Csp2CounterRulesIncremental(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter_rule_run(k++ % 8, csp::PropagationMode::kIncremental));
  }
}
BENCHMARK(BM_Csp2CounterRulesIncremental);

void BM_Csp2CounterRulesScratch(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter_rule_run(k++ % 8, csp::PropagationMode::kScratch));
  }
}
BENCHMARK(BM_Csp2CounterRulesScratch);

void BM_Csp2CounterRulesLegacy(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        counter_rule_run(k++ % 8, csp::PropagationMode::kLegacy));
  }
}
BENCHMARK(BM_Csp2CounterRulesLegacy);

// The fat-scope variant of the counter-rule workload: a CSP2-shaped grid
// (m=8 processors x S=64 slots, 24 tasks, 256-variable CountEq windows plus
// the per-slot AllDifferentExcept columns) searched chronologically, so the
// run is propagation-bound rather than heuristic-bound.  Without symmetry
// chains every mode wakes the same pruning closure, so all three modes
// explore the identical tree and wall time divides out into propagation
// throughput directly.
csp::SolveStats counter_grid_run(csp::PropagationMode mode) {
  constexpr int m = 8, S = 64, n = 24, L = 32, W = 8;
  csp::Solver solver;
  std::vector<csp::VarId> grid;  // slot-major
  grid.reserve(static_cast<std::size_t>(S) * m);
  for (int t = 0; t < S; ++t) {
    for (int j = 0; j < m; ++j) grid.push_back(solver.add_variable(0, n));
  }
  auto var = [&](int t, int j) {
    return grid[static_cast<std::size_t>(t) * m + static_cast<std::size_t>(j)];
  };
  for (int t = 0; t < S; ++t) {
    std::vector<csp::VarId> col;
    col.reserve(m);
    for (int j = 0; j < m; ++j) col.push_back(var(t, j));
    solver.add(csp::make_all_different_except(std::move(col), /*except=*/n));
  }
  for (int i = 0; i < n; ++i) {
    const int start = (i * 7) % (S - L);
    std::vector<csp::VarId> scope;
    scope.reserve(static_cast<std::size_t>(L) * m);
    for (int t = start; t < start + L; ++t) {
      for (int j = 0; j < m; ++j) scope.push_back(var(t, j));
    }
    solver.add(csp::make_count_eq(std::move(scope), /*value=*/i,
                                  /*target=*/W));
  }
  csp::SearchOptions options;
  options.var_heuristic = csp::VarHeuristic::kLex;
  options.val_heuristic = csp::ValHeuristic::kMin;
  options.propagation = mode;
  options.max_nodes = 30'000;
  return solver.solve(options).stats;
}

/// Sums the counter-rule workload over a fixed instance block and records
/// throughput under `label` into the json report.
void report_counter_rules(bench::BenchJson& json, const char* label,
                          csp::PropagationMode mode) {
  csp::SolveStats total;
  for (std::uint64_t k = 0; k < 8; ++k) {
    const csp::SolveStats stats = counter_rule_run(k, mode);
    total.nodes += stats.nodes;
    total.propagations += stats.propagations;
    total.events += stats.events;
    total.seconds += stats.seconds;
  }
  json.record(label)
      .metric("wall_seconds", total.seconds)
      .metric("nodes", static_cast<double>(total.nodes))
      .metric("propagations", static_cast<double>(total.propagations))
      .metric("events", static_cast<double>(total.events))
      .metric("nodes_per_sec",
              static_cast<double>(total.nodes) / total.seconds)
      .metric("propagations_per_sec",
              static_cast<double>(total.propagations) / total.seconds);
  std::printf("%-32s %10.3fs  %12.0f props/s  %10.0f nodes/s\n", label,
              total.seconds,
              static_cast<double>(total.propagations) / total.seconds,
              static_cast<double>(total.nodes) / total.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n== CSP2 counter-rule workload (BENCH_micro.json) ==\n");
  // incremental vs scratch isolates the trailed-counter fast path (same
  // wake sets, identical tree); incremental vs legacy is the speedup over
  // the pre-change engine (wake-on-any-change, full rescans).  The three
  // grid records explore the identical tree, so `propagations_per_sec` of
  // the incremental entry against `useful_propagations_per_sec` of the
  // legacy entry (canonical propagation count / wall) is the engine
  // speedup tracked across PRs.
  bench::BenchJson json("micro");
  report_counter_rules(json, "csp2_counter_rules_incremental",
                       csp::PropagationMode::kIncremental);
  report_counter_rules(json, "csp2_counter_rules_scratch",
                       csp::PropagationMode::kScratch);
  report_counter_rules(json, "csp2_counter_rules_legacy",
                       csp::PropagationMode::kLegacy);

  const csp::SolveStats canonical =
      counter_grid_run(csp::PropagationMode::kIncremental);
  for (const auto& [label, mode] :
       {std::pair{"counter_grid_incremental",
                  csp::PropagationMode::kIncremental},
        std::pair{"counter_grid_scratch", csp::PropagationMode::kScratch},
        std::pair{"counter_grid_legacy", csp::PropagationMode::kLegacy}}) {
    const csp::SolveStats stats =
        mode == csp::PropagationMode::kIncremental ? canonical
                                                   : counter_grid_run(mode);
    json.record(label)
        .metric("wall_seconds", stats.seconds)
        .metric("nodes", static_cast<double>(stats.nodes))
        .metric("propagations", static_cast<double>(stats.propagations))
        .metric("events", static_cast<double>(stats.events))
        .metric("nodes_per_sec",
                static_cast<double>(stats.nodes) / stats.seconds)
        .metric("propagations_per_sec",
                static_cast<double>(stats.propagations) / stats.seconds)
        .metric("useful_propagations_per_sec",
                static_cast<double>(canonical.propagations) / stats.seconds);
    std::printf("%-32s %10.3fs  %12.0f useful-props/s  %10.0f nodes/s\n",
                label, stats.seconds,
                static_cast<double>(canonical.propagations) / stats.seconds,
                static_cast<double>(stats.nodes) / stats.seconds);
  }
  json.write();
  return 0;
}
