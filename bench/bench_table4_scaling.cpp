// Table IV reproduction (§VII-E): scaling with the number of tasks.
// Workload: Tmax = 15, n in {4, 8, 16, 32, 64, 128, 256}, m = m_min =
// ceil(sum C_i/T_i) per instance; solvers CSP1 and CSP2+(D-C).
//
// Paper reference (100 instances per n, 30 s limit):
//     n    r     m      T(1000)  CSP1 solved/tres   CSP2+(D-C) solved/tres
//     4    0.74  2.15   2.60     29% / 19.52        81% / 0.01
//     8    0.84  3.56   2.79      1% / 29.58        66% / 0.05
//     16   0.93  6.87   111.21    0% / 30.00        10% / 0.02
//     32   0.96  13.02  285.29    -                   0% / 0.00
//     64   0.98  25.82  345.95    -                   0% / 0.00
//     128  0.99  51.07  360.36    -                   0% / 0.00
//     256  0.99  101.28 360.36    -                   0% / 0.00
// Shape to reproduce: r -> 1 and m growing linearly with n; T converging to
// lcm(1..15) = 360360; CSP1 collapsing (overruns, then out-of-memory "-");
// CSP2+(D-C) never overrunning but solving less as r -> 1.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "exp/tables.hpp"
#include "support/deadline.hpp"

int main() {
  using namespace mgrts;

  const exp::BenchEnv env = exp::bench_env(/*instances=*/30,
                                           /*limit_ms=*/400,
                                           /*full_instances=*/100,
                                           /*full_limit_ms=*/30'000);

  std::vector<exp::ScalingRow> rows;
  std::vector<std::string> labels;
  const double limit_seconds =
      static_cast<double>(env.time_limit_ms) / 1000.0;

  bench::BenchJson json("table4_scaling");
  support::Stopwatch total_watch;

  for (const std::int32_t n : {4, 8, 16, 32, 64, 128, 256}) {
    exp::BatchOptions options;
    options.generator.tasks = n;
    options.generator.rule = gen::ProcessorRule::kMinCapacity;
    options.generator.t_max = 15;
    options.instances = env.instances;
    options.seed = env.seed + static_cast<std::uint64_t>(n);
    options.workers = env.workers;
    if (n == 4) {
      bench::print_banner("Table IV: growing number of tasks", env,
                          options.generator);
    }

    std::vector<exp::SolverSpec> specs;
    exp::SolverSpec csp1;
    csp1.label = "CSP1";
    csp1.config.method = core::Method::kCsp1Generic;
    csp1.config.time_limit_ms = env.time_limit_ms;
    csp1.config.generic = core::choco_like_defaults(env.seed);
    // The variable budget models Choco's memory exhaustion on large
    // instances; the paper stopped running CSP1 beyond n = 16.
    csp1.config.limits.max_variables = 2'000'000;
    specs.push_back(std::move(csp1));
    specs.push_back(
        exp::csp2_spec(csp2::ValueOrder::kDMinusC, env.time_limit_ms));
    // This repo's pruning extensions (slack + tight-demand), shown next to
    // the paper-faithful configuration: they recover part of the paper's
    // "no overrun" observation by converting timeouts into fast
    // infeasibility proofs (see EXPERIMENTS.md for the discussion).
    exp::SolverSpec pruned = exp::csp2_spec(csp2::ValueOrder::kDMinusC,
                                            env.time_limit_ms,
                                            /*paper_faithful=*/false);
    pruned.label = "CSP2+(D-C)+prune";
    specs.push_back(std::move(pruned));

    support::Stopwatch batch_watch;
    const exp::BatchResult batch = exp::run_batch(options, specs);
    const double batch_seconds = batch_watch.seconds();
    labels = batch.labels;
    rows.push_back(exp::scaling_row(batch, n, limit_seconds));
    std::printf("n=%d done (%.2fs); %s\n", n, batch_seconds,
                exp::health_summary(batch.health).c_str());

    std::int64_t batch_nodes = 0;
    for (const auto& inst : batch.instances) {
      for (const auto& run : inst.runs) batch_nodes += run.nodes;
    }
    json.record("n" + std::to_string(n))
        .metric("wall_seconds", batch_seconds)
        .metric("instances", static_cast<double>(env.instances))
        .metric("workers", static_cast<double>(env.workers))
        .metric("nodes", static_cast<double>(batch_nodes));
  }

  json.record("total")
      .metric("wall_seconds", total_watch.seconds())
      .metric("workers", static_cast<double>(env.workers));
  json.write();

  const auto table = exp::table4_scaling(rows, labels);
  std::printf("\n%s\n", table.to_string().c_str());
  bench::maybe_write_csv("table4_scaling", table);
  std::printf(
      "'-' = every run exceeded the CSP1 variable budget (the paper's "
      "out-of-memory rows).\n"
      "paper shape: r -> 1, m ~ n/2, T -> 360.36k; CSP1 dies by n = 16; "
      "CSP2+(D-C) stays fast but solves ~0%% for n >= 32.\n");
  return 0;
}
