// Heterogeneous platforms (§VI-A): execution rates s_{i,j}, dedicated
// processors via s_{i,j} = 0, processor-quality variable ordering, and the
// per-group symmetry rule (13).
//
// Scenario: a controller SoC with
//   P1 — a slow general-purpose core (rate 1 for everything),
//   P2 — an identical twin of P1,
//   P3 — a signal-processing core: fast for the two DSP-ish tasks, unable
//        to run the control task at all.
//
// Build & run:  ./heterogeneous_platform
#include <cstdio>

#include "core/solve.hpp"
#include "rt/gantt.hpp"

int main() {
  using namespace mgrts;

  const rt::TaskSet tasks = rt::TaskSet::from_params({
      {0, 2, 4, 4},  // tau1: control loop      (P1/P2 only)
      {0, 4, 4, 4},  // tau2: filter bank       (DSP-friendly)
      {0, 4, 6, 6},  // tau3: FFT stage         (DSP-friendly)
      {0, 1, 2, 2},  // tau4: watchdog          (anything)
  });
  //                         P1 P2 P3
  const rt::Platform platform = rt::Platform::heterogeneous({
      {1, 1, 0},  // tau1: the DSP cannot run the control loop
      {1, 1, 2},  // tau2
      {1, 1, 2},  // tau3
      {1, 1, 1},  // tau4
  });

  std::printf("platform: %s\n", platform.describe().c_str());
  for (rt::ProcId j = 0; j < platform.processors(); ++j) {
    std::printf("  Q(P%d) = %.3f\n", j + 1, platform.quality(j, tasks));
  }
  const auto order = platform.processors_by_quality(tasks);
  std::printf("variable order (less capable first, §VI-A):");
  for (const auto j : order) std::printf(" P%d", j + 1);
  std::printf("\n");
  const auto groups = platform.identical_groups(tasks.size());
  std::printf("identical groups for rule (13): %zu group(s)\n\n",
              groups.size());

  // The dedicated solver with rule 1 is a fast heuristic here but not a
  // complete decision procedure on heterogeneous platforms; when it fails
  // to find a schedule we fall back to the complete generic CSP2 encoding.
  core::SolveConfig dedicated;
  dedicated.method = core::Method::kCsp2Dedicated;
  dedicated.time_limit_ms = 5000;
  const auto fast = core::solve_instance(tasks, platform, dedicated);
  std::printf("dedicated CSP2 search: %s (%.4fs, complete proof: %s)\n",
              core::to_string(fast.verdict), fast.seconds,
              fast.complete ? "yes" : "no");

  core::SolveReport final_report = fast;
  if (fast.verdict != core::Verdict::kFeasible) {
    core::SolveConfig generic;
    generic.method = core::Method::kCsp2Generic;
    generic.time_limit_ms = 10000;
    final_report = core::solve_instance(tasks, platform, generic);
    std::printf("generic CSP2 encoding: %s (%.4fs)\n",
                core::to_string(final_report.verdict), final_report.seconds);
  }

  if (final_report.schedule.has_value()) {
    std::printf("\nwitness (validated: %s):\n%s",
                final_report.witness_valid ? "yes" : "NO",
                rt::render_schedule(tasks, *final_report.schedule).c_str());
    std::printf(
        "\nNote how the weighted constraint (12) shows up: tau2 (C=4) takes "
        "only 2 slots on the rate-2 DSP core.\n");
  }
  return final_report.verdict == core::Verdict::kFeasible ? 0 : 1;
}
