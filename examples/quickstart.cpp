// Quickstart: the paper's running Example 1 end to end.
//
//   * build a periodic task system (O_i, C_i, D_i, T_i),
//   * inspect its availability windows (Figure 1),
//   * decide feasibility on two identical processors with the dedicated
//     CSP2 solver (§V) and with the paper's CSP1 route (§IV),
//   * print and validate the cyclic schedule witness.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "core/solve.hpp"
#include "rt/gantt.hpp"
#include "rt/validate.hpp"

int main() {
  using namespace mgrts;

  // Example 1 (§II): m=2 processors, tasks as (offset, wcet, deadline,
  // period).  tau2 is released one unit late, so its last window of every
  // hyperperiod wraps around T = lcm(2,4,3) = 12.
  const rt::TaskSet tasks = rt::TaskSet::from_params({
      {0, 1, 2, 2},  // tau1
      {1, 3, 4, 4},  // tau2
      {0, 2, 2, 3},  // tau3
  });
  const rt::Platform platform = rt::Platform::identical(2);

  std::printf("== instance ==\n");
  std::printf("hyperperiod T = %lld, utilization U = %.4f (ratio %.4f)\n\n",
              static_cast<long long>(tasks.hyperperiod()),
              tasks.utilization().to_double(), tasks.utilization_ratio(2));
  std::printf("%s\n", rt::render_windows(tasks).c_str());

  // Solve with the paper's dedicated CSP2 search, (D-C) value order (the
  // experimental winner of §VII).
  core::SolveConfig config;
  config.method = core::Method::kCsp2Dedicated;
  config.csp2.value_order = csp2::ValueOrder::kDMinusC;
  const core::SolveReport csp2_report =
      core::solve_instance(tasks, platform, config);

  std::printf("== CSP2+(D-C), dedicated search ==\n");
  std::printf("verdict: %s in %.4fs (%lld nodes)\n",
              core::to_string(csp2_report.verdict), csp2_report.seconds,
              static_cast<long long>(csp2_report.nodes));
  if (csp2_report.schedule.has_value()) {
    std::printf("witness validated: %s\n",
                csp2_report.witness_valid ? "yes" : "NO");
    std::printf("%s\n",
                rt::render_schedule(tasks, *csp2_report.schedule).c_str());
  }

  // Same instance through CSP1 on the generic engine (the Choco role).
  config.method = core::Method::kCsp1Generic;
  config.generic = core::choco_like_defaults(/*seed=*/1);
  config.time_limit_ms = 5000;
  const core::SolveReport csp1_report =
      core::solve_instance(tasks, platform, config);
  std::printf("== CSP1 on the generic solver ==\n");
  std::printf("verdict: %s in %.4fs (%lld nodes, witness %s)\n",
              core::to_string(csp1_report.verdict), csp1_report.seconds,
              static_cast<long long>(csp1_report.nodes),
              csp1_report.witness_valid ? "valid" : "absent");

  // And the exact polynomial baseline.
  config.method = core::Method::kFlowOracle;
  const core::SolveReport oracle =
      core::solve_instance(tasks, platform, config);
  std::printf("== flow oracle ==\nverdict: %s in %.4fs\n",
              core::to_string(oracle.verdict), oracle.seconds);

  return csp2_report.verdict == core::Verdict::kFeasible &&
                 csp2_report.witness_valid
             ? 0
             : 1;
}
