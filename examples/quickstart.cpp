// Quickstart: the paper's running Example 1 end to end.
//
//   * build a periodic task system (O_i, C_i, D_i, T_i),
//   * inspect its availability windows (Figure 1),
//   * solve through the staged presolve->backend pipeline (the default
//     facade path) and read the `decided_by` provenance,
//   * reproduce the paper's own routes — dedicated CSP2 search (§V) and
//     CSP1 on the generic engine (§IV) — with presolve disabled,
//   * print and validate the cyclic schedule witness.
//
//   * run a small fault-contained batch (core::solve_batch) and read the
//     BatchHealth counters,
//   * serve the same instance through the in-process serving layer
//     (serve::Service) and watch the canonicalized verdict cache answer a
//     permuted duplicate with provenance,
//   * fan a generated batch across a one-worker shard fleet
//     (exp::run_batch_sharded over a dist::WorkerServer) and check the
//     merged records against the workerless reference run.
//
// Build & run:  ./quickstart   (also wired into ctest as a smoke test; the
// exit code asserts the printed provenance)
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/instance_io.hpp"
#include "core/solve.hpp"
#include "dist/worker.hpp"
#include "exp/sharded.hpp"
#include "rt/gantt.hpp"
#include "rt/validate.hpp"
#include "serve/service.hpp"

int main() {
  using namespace mgrts;

  // Example 1 (§II): m=2 processors, tasks as (offset, wcet, deadline,
  // period).  tau2 is released one unit late, so its last window of every
  // hyperperiod wraps around T = lcm(2,4,3) = 12.
  const rt::TaskSet tasks = rt::TaskSet::from_params({
      {0, 1, 2, 2},  // tau1
      {1, 3, 4, 4},  // tau2
      {0, 2, 2, 3},  // tau3
  });
  const rt::Platform platform = rt::Platform::identical(2);

  std::printf("== instance ==\n");
  std::printf("hyperperiod T = %lld, utilization U = %.4f (ratio %.4f)\n\n",
              static_cast<long long>(tasks.hyperperiod()),
              tasks.utilization().to_double(), tasks.utilization_ratio(2));
  std::printf("%s\n", rt::render_windows(tasks).c_str());

  // The default facade path: presolve stages (exact analytical tests, then
  // the flow oracle) in front of the requested backend.  On an identical
  // platform the flow oracle decides Example 1 before any search starts.
  const core::SolveReport piped = core::solve_instance(tasks, platform);
  std::printf("== pipeline (default facade path) ==\n");
  std::printf("verdict: %s in %.4fs, decided by %s\n",
              core::to_string(piped.verdict), piped.seconds,
              piped.decided_by.c_str());
  for (const core::StageTiming& stage : piped.stage_times) {
    std::printf("  stage %-16s %-12s %.4fs\n", stage.stage.c_str(),
                core::to_string(stage.verdict), stage.seconds);
  }
  if (piped.schedule.has_value()) {
    std::printf("witness validated: %s\n%s\n",
                piped.witness_valid ? "yes" : "NO",
                rt::render_schedule(tasks, *piped.schedule).c_str());
  }

  // The paper's dedicated CSP2 search, (D-C) value order (the experimental
  // winner of §VII), with presolve off so the search itself answers.
  core::SolveConfig config;
  config.method = core::Method::kCsp2Dedicated;
  config.csp2.value_order = csp2::ValueOrder::kDMinusC;
  config.pipeline = core::PipelineOptions::none();
  const core::SolveReport csp2_report =
      core::solve_instance(tasks, platform, config);

  std::printf("== CSP2+(D-C), dedicated search ==\n");
  std::printf("verdict: %s in %.4fs (%lld nodes, decided by %s)\n",
              core::to_string(csp2_report.verdict), csp2_report.seconds,
              static_cast<long long>(csp2_report.nodes),
              csp2_report.decided_by.c_str());
  if (csp2_report.schedule.has_value()) {
    std::printf("witness validated: %s\n",
                csp2_report.witness_valid ? "yes" : "NO");
  }

  // Same instance through CSP1 on the generic engine (the Choco role),
  // with nogood learning on so the report's learning stats are live.
  config.method = core::Method::kCsp1Generic;
  config.generic = core::choco_like_defaults(/*seed=*/1);
  config.generic.nogoods = true;
  config.generic.prop_profile = true;  // per-propagator seconds below
  config.time_limit_ms = 5000;
  const core::SolveReport csp1_report =
      core::solve_instance(tasks, platform, config);
  std::printf("== CSP1 on the generic solver ==\n");
  std::printf("verdict: %s in %.4fs (%lld nodes, witness %s, decided by %s)\n",
              core::to_string(csp1_report.verdict), csp1_report.seconds,
              static_cast<long long>(csp1_report.nodes),
              csp1_report.witness_valid ? "valid" : "absent",
              csp1_report.decided_by.c_str());
  // Nogood learning provenance (SolveReport::nogoods): how many conflicts
  // were recorded, how far conflict analysis shrank them, how the 1-UIP
  // clauses compare against the decision-set baseline for the very same
  // conflicts, and how often the replayed clauses fired.  Pool exchanges
  // stay 0 outside portfolios.
  const core::NogoodStats& learn = csp1_report.nogoods;
  std::printf("nogoods: %lld recorded (shrink ratio %.2f, 1-UIP/decision-set "
              "length %.2f), %lld replay hits, %lld subsumed, %lld LBD "
              "refreshes, %lld exported / %lld imported\n",
              static_cast<long long>(learn.recorded), learn.shrink_ratio(),
              learn.uip_len_ratio(),
              static_cast<long long>(learn.replay_hits),
              static_cast<long long>(learn.subsumed),
              static_cast<long long>(learn.lbd_refreshed),
              static_cast<long long>(learn.exported),
              static_cast<long long>(learn.imported));
  // Per-propagator observability (SolveReport::propagators): how often each
  // propagator class's advisors asked to run (wakes), how often it actually
  // swept (runs), how many domain changes the sweeps made (prunes), and —
  // because prop_profile was set above — the wall time inside the sweeps.
  for (const core::PropagatorStats& row : csp1_report.propagators) {
    std::printf("propagator %-18s wakes %-8lld runs %-8lld prunes %-8lld "
                "%.4fs\n",
                row.name.c_str(), static_cast<long long>(row.wakes),
                static_cast<long long>(row.runs),
                static_cast<long long>(row.prunes), row.seconds);
  }

  // Batch route with failure containment: same instance as a one-job batch.
  // BatchPolicy retries crash-type failures with widened budgets;
  // BatchHealth reports what was contained (all zeros on this clean run).
  core::BatchPolicy policy;
  policy.workers = 1;
  policy.max_attempts = 2;
  core::BatchHealth health;
  const auto batch_reports = core::solve_batch(
      {core::BatchJob{tasks, platform, core::SolveConfig{}}}, policy, &health);
  std::printf("== batch route (core::solve_batch) ==\n");
  std::printf("verdict: %s; health: %lld failures, %lld retries, %lld "
              "recovered, %lld quarantined%s%s\n",
              core::to_string(batch_reports.front().verdict),
              static_cast<long long>(health.failures),
              static_cast<long long>(health.retries),
              static_cast<long long>(health.recovered),
              static_cast<long long>(health.quarantined),
              health.first_error.empty() ? "" : "; first error: ",
              health.first_error.c_str());

  // Serving route: the daemon's request handler, in-process (no socket).
  // The second request permutes the task order; the canonicalized verdict
  // cache recognizes it as the same schedulability instance and answers
  // from cache, provenance intact ("cache:flow-oracle").
  serve::Service service;
  const std::string original = core::write_instance_string(tasks, platform);
  serve::Message request;
  request.kind = "solve";
  request.body = original;
  const serve::Message first = service.handle_message(request);
  const rt::TaskSet permuted = rt::TaskSet::from_params({
      {0, 2, 2, 3},  // tau3 first
      {0, 1, 2, 2},  // tau1
      {1, 3, 4, 4},  // tau2
  });
  request.body = core::write_instance_string(permuted, platform);
  const serve::Message second = service.handle_message(request);
  std::printf("== serving route (serve::Service) ==\n");
  std::printf("first:  %s, decided by %s\n",
              first.get("verdict").value_or("?").c_str(),
              first.get("decided-by").value_or("?").c_str());
  std::printf("second (permuted): %s, decided by %s\n",
              second.get("verdict").value_or("?").c_str(),
              second.get("decided-by").value_or("?").c_str());

  // Distributed shard route (DESIGN.md §16): a generated batch fanned
  // across a fleet — here one in-process worker on an AF_UNIX socket.
  // Shards name their specs through the registry and carry per-index
  // seeds, so the merged result is record-identical to the workerless
  // reference run of the same options (the single-box truth).
  exp::BatchOptions batch_options;
  batch_options.generator.tasks = 6;
  batch_options.generator.processors = 3;
  batch_options.generator.t_max = 5;
  batch_options.instances = 6;
  const std::vector<std::string> lineup = {"csp2-dmc"};
  const exp::BatchResult reference =
      exp::run_batch_sharded(batch_options, lineup, /*time_limit_ms=*/5000);

  dist::WorkerOptions worker_options;
  worker_options.socket_path =
      "/tmp/mgrts_quickstart_" + std::to_string(::getpid()) + ".sock";
  dist::WorkerServer worker(worker_options);
  worker.start();
  dist::FleetOptions fleet;
  fleet.workers = {worker_options.socket_path};
  fleet.shards = 2;
  dist::FleetStats fleet_stats;
  const exp::BatchResult sharded = exp::run_batch_sharded(
      batch_options, lineup, /*time_limit_ms=*/5000, fleet, &fleet_stats);
  worker.stop();

  bool sharded_ok = sharded.instances.size() == reference.instances.size() &&
                    fleet_stats.duplicate_rows == 0;
  std::size_t sharded_feasible = 0;
  for (std::size_t k = 0; sharded_ok && k < sharded.instances.size(); ++k) {
    const exp::InstanceRecord& got = sharded.instances[k];
    const exp::InstanceRecord& want = reference.instances[k];
    sharded_ok = got.index == want.index &&
                 got.runs.size() == want.runs.size();
    for (std::size_t s = 0; sharded_ok && s < got.runs.size(); ++s) {
      sharded_ok = got.runs[s].verdict == want.runs[s].verdict &&
                   got.runs[s].nodes == want.runs[s].nodes &&
                   got.runs[s].decided_by == want.runs[s].decided_by;
      if (got.runs[s].verdict == core::Verdict::kFeasible) ++sharded_feasible;
    }
  }
  std::printf("== distributed shard route (exp::run_batch_sharded) ==\n");
  std::printf("%zu instances over 1 worker / %d shards: %zu feasible, "
              "%lld rows redispatched, %lld duplicates; records %s the "
              "single-box run\n",
              sharded.instances.size(), fleet.shards, sharded_feasible,
              static_cast<long long>(fleet_stats.redispatched),
              static_cast<long long>(fleet_stats.duplicate_rows),
              sharded_ok ? "match" : "DIVERGE from");

  // Smoke assertions: the pipeline's provenance must name the flow oracle
  // (the first decisive stage here), and the paper's route must agree with
  // a validated witness of its own.
  const bool provenance_ok = piped.verdict == core::Verdict::kFeasible &&
                             piped.decided_by == "flow-oracle" &&
                             piped.witness_valid;
  const bool paper_ok = csp2_report.verdict == core::Verdict::kFeasible &&
                        csp2_report.witness_valid &&
                        csp2_report.decided_by == "backend:CSP2(dedicated)";
  const bool health_ok = health.failures == 0 && health.quarantined == 0;
  const bool serving_ok =
      first.get("cache").value_or("") == "miss" &&
      second.get("cache").value_or("") == "hit" &&
      second.get("verdict").value_or("") == "feasible" &&
      second.get("decided-by").value_or("") == "cache:flow-oracle";
  if (!provenance_ok) std::printf("FAIL: pipeline provenance unexpected\n");
  if (!paper_ok) std::printf("FAIL: dedicated CSP2 route unexpected\n");
  if (!health_ok) std::printf("FAIL: batch health not clean\n");
  if (!serving_ok) std::printf("FAIL: serving cache route unexpected\n");
  if (!sharded_ok) std::printf("FAIL: sharded batch diverged\n");
  return provenance_ok && paper_ok && health_ok && serving_ok && sharded_ok
             ? 0
             : 1;
}
