// Arbitrary-deadline systems (§VI-B): when D_i > T_i, consecutive jobs of
// one task may be live simultaneously.  The paper's transformation creates
// k_i = ceil(D_i/T_i) clones per task; the clone system is constrained-
// deadline and is solved with the unchanged CSP machinery.
//
// Build & run:  ./arbitrary_deadline
#include <cstdio>

#include "core/solve.hpp"
#include "rt/gantt.hpp"

int main() {
  using namespace mgrts;

  // tau1 releases every 2 units but may finish up to 4 units after release:
  // two of its jobs overlap, so they can run in parallel on two cores.
  const rt::TaskSet tasks = rt::TaskSet::from_params(
      {
          {0, 3, 4, 2},  // tau1: D > T  -> 2 clones
          {0, 1, 2, 2},  // tau2: constrained
      },
      rt::DeadlineModel::kArbitrary);

  std::printf("== original (arbitrary-deadline) system ==\n");
  for (rt::TaskId i = 0; i < tasks.size(); ++i) {
    const auto& p = tasks[i].params;
    std::printf("  %s: O=%lld C=%lld D=%lld T=%lld%s\n", tasks[i].name.c_str(),
                static_cast<long long>(p.offset),
                static_cast<long long>(p.wcet),
                static_cast<long long>(p.deadline),
                static_cast<long long>(p.period),
                p.deadline > p.period ? "   (D > T!)" : "");
  }

  // Show the clone expansion explicitly (the facade would do this for us).
  const rt::CloneExpansion expansion = tasks.expand_clones();
  std::printf("\n== clone system (constrained) ==\n");
  for (std::size_t c = 0; c < expansion.tasks.size(); ++c) {
    const auto& clone = expansion.tasks[c];
    std::printf("  %s  <- tau%d clone #%d:  O=%lld C=%lld D=%lld T=%lld\n",
                clone.name.c_str(), expansion.origin[c].original + 1,
                expansion.origin[c].clone + 1,
                static_cast<long long>(clone.params.offset),
                static_cast<long long>(clone.params.wcet),
                static_cast<long long>(clone.params.deadline),
                static_cast<long long>(clone.params.period));
  }

  const rt::Platform platform = rt::Platform::identical(2);
  const core::SolveReport report = core::solve_instance(tasks, platform);
  std::printf("\nverdict on m=2: %s (%.4fs)\n",
              core::to_string(report.verdict), report.seconds);

  if (report.schedule.has_value() && report.solved_tasks.has_value()) {
    std::printf("witness over the clone system (validated: %s):\n%s",
                report.witness_valid ? "yes" : "NO",
                rt::render_schedule(*report.solved_tasks,
                                    *report.schedule).c_str());
    std::printf("%s",
                rt::render_windows(*report.solved_tasks).c_str());
    std::printf(
        "\nSlots where both tau1 clones run at once are exactly the paper's "
        "point: different jobs of one task execute in parallel.\n");
  }

  // The same system is infeasible on one processor: U > 1.
  const core::SolveReport single =
      core::solve_instance(tasks, rt::Platform::identical(1));
  std::printf("verdict on m=1: %s (expected infeasible, U = %.2f)\n",
              core::to_string(single.verdict),
              tasks.utilization().to_double());
  return report.verdict == core::Verdict::kFeasible ? 0 : 1;
}
