// Feasible priority assignment — the paper's §VIII future-work viewpoint:
// instead of building the schedule table directly, search the n! priority
// orders for one under which *global fixed-priority* scheduling meets all
// deadlines, seeding the search with the (D-C) criterion that wins the
// paper's experiments.
//
// The example uses the classic Dhall-effect instance to show:
//   1. global EDF misses although the system is trivially feasible;
//   2. the (D-C) seeded search immediately finds a working FP order;
//   3. the CSP2 solver certifies feasibility independently.
//
// Build & run:  ./priority_assignment
#include <cstdio>

#include "core/solve.hpp"
#include "priority/assignment.hpp"
#include "rt/gantt.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace mgrts;

  // Dhall-style instance: two light tasks + one processor-saturating task.
  const rt::TaskSet tasks = rt::TaskSet::from_params({
      {0, 1, 2, 2},  // tau1 light
      {0, 1, 2, 2},  // tau2 light
      {0, 2, 2, 2},  // tau3 heavy (needs a core to itself)
  });
  const rt::Platform platform = rt::Platform::identical(2);

  // 1. Global EDF fails: both light tasks grab the processors at t=0.
  const sim::SimResult edf = sim::simulate(tasks, platform);
  std::printf("global EDF: %s", sim::to_string(edf.status));
  if (edf.status == sim::SimStatus::kDeadlineMiss) {
    std::printf(" (tau%d at t=%lld)", edf.miss_task + 1,
                static_cast<long long>(edf.miss_time));
  }
  std::printf("\n");

  // 2. Priority search, (D-C) first.
  const prio::SearchResult search =
      prio::find_feasible_priority(tasks, platform);
  std::printf("priority search: %s after %lld order(s), source: %s\n",
              prio::to_string(search.status),
              static_cast<long long>(search.orders_tried), search.source);
  if (search.status == prio::SearchStatus::kFound) {
    std::printf("feasible priority order (high to low):");
    for (const auto task : *search.order) std::printf(" tau%d", task + 1);
    std::printf("\n");

    sim::SimOptions fp;
    fp.policy = sim::Policy::kFixedPriority;
    fp.priority = *search.order;
    const sim::SimResult run = sim::simulate(tasks, platform, fp);
    if (run.schedule.has_value()) {
      std::printf("\nglobal FP schedule under that order:\n%s\n",
                  rt::render_schedule(tasks, *run.schedule).c_str());
    }
  }

  // 3. Independent certification by the CSP2 solver.
  const core::SolveReport csp = core::solve_instance(tasks, platform);
  std::printf("CSP2 verdict: %s (witness valid: %s)\n",
              core::to_string(csp.verdict),
              csp.witness_valid ? "yes" : "no");

  return search.status == prio::SearchStatus::kFound &&
                 csp.verdict == core::Verdict::kFeasible
             ? 0
             : 1;
}
