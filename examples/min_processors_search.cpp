// Minimum-processor search — §VII-E closes with the suggestion of "an
// algorithm which incrementally searches for the smallest number of
// processors m required to schedule a given set of tasks".  This example
// runs that search on random instances and reports where the capacity
// bound ceil(U) is tight and where window structure forces extra cores.
//
// Build & run:  ./min_processors_search [seed]
#include <cstdio>
#include <cstdlib>

#include "core/min_processors.hpp"
#include "gen/generator.hpp"

int main(int argc, char** argv) {
  using namespace mgrts;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  gen::GeneratorOptions options;
  options.tasks = 6;
  options.t_max = 8;
  options.order = gen::ParamOrder::kDFirst;

  std::printf("searching m* for 12 random instances (n=%d, Tmax=%lld)\n\n",
              options.tasks, static_cast<long long>(options.t_max));
  std::printf("%-4s %-10s %-8s %-8s %-10s\n", "#", "ceil(U)", "m*", "tries",
              "verdict trail");

  int tight = 0;
  for (std::uint64_t k = 0; k < 12; ++k) {
    const gen::Instance inst = gen::generate_indexed(options, seed, k);
    const core::MinProcessorsResult result =
        core::min_processors(inst.tasks);
    if (!result.found) {
      std::printf("%-4llu search undecided\n",
                  static_cast<unsigned long long>(k));
      continue;
    }
    std::string trail;
    for (const auto v : result.trail) {
      trail += core::to_string(v);
      trail += ' ';
    }
    std::printf("%-4llu %-10d %-8d %-8zu %s\n",
                static_cast<unsigned long long>(k), result.lower_bound,
                result.processors, result.trail.size(), trail.c_str());
    tight += result.processors == result.lower_bound ? 1 : 0;
  }
  std::printf(
      "\n%d/12 instances are schedulable at the utilization bound ceil(U); "
      "the rest need extra processors because of tight windows (D << T).\n",
      tight);
  return 0;
}
