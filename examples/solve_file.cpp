// Command-line solver: read an instance file, run the decision pipeline a
// practitioner would use — analytical quick tests first, then the cheap
// incomplete baselines, then the exact CSP solver — and print the outcome.
//
//   ./solve_file path/to/instance.txt
//   ./solve_file --demo            # writes and solves a sample file
//
// Instance format (see core/instance_io.hpp):
//   tasks 3
//   0 1 2 2
//   1 3 4 4
//   0 2 2 3
//   processors 2
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/tests.hpp"
#include "core/instance_io.hpp"
#include "core/solve.hpp"
#include "partition/partition.hpp"
#include "rt/gantt.hpp"

namespace {

constexpr const char* kDemo =
    "# Example 1 of the paper\n"
    "tasks 3\n"
    "0 1 2 2\n"
    "1 3 4 4\n"
    "0 2 2 3\n"
    "processors 2\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace mgrts;

  std::string text;
  if (argc > 1 && std::strcmp(argv[1], "--demo") != 0) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::printf("(demo instance)\n%s\n", kDemo);
    text = kDemo;
  }

  core::InstanceFile file;
  try {
    file = core::read_instance_string(text);
  } catch (const Error& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }

  const rt::TaskSet constrained = file.tasks.is_constrained()
                                      ? file.tasks
                                      : file.tasks.to_constrained();
  std::printf("instance: n=%d, %s, T=%lld, U=%.3f\n", constrained.size(),
              file.platform.describe().c_str(),
              static_cast<long long>(constrained.hyperperiod()),
              constrained.utilization().to_double());

  // Stage 1: analytical filters (identical platforms only).
  if (file.platform.is_identical()) {
    const auto quick =
        analysis::quick_decide(constrained, file.platform.processors());
    std::printf("analysis: %s (%s)\n", analysis::to_string(quick.verdict),
                quick.test);
    if (quick.verdict != analysis::TestVerdict::kUnknown) {
      std::printf("decided without search: %s\n", quick.detail.c_str());
      return quick.verdict == analysis::TestVerdict::kFeasible ? 0 : 1;
    }

    // Stage 2: the no-migration baseline; a hit means a simple deployment.
    const auto packed = partition::partition_tasks(
        constrained, file.platform.processors());
    if (packed.found) {
      std::printf(
          "partitioned first-fit suffices (no migration needed):\n%s",
          rt::render_schedule(constrained, *packed.schedule).c_str());
      return 0;
    }
    std::printf("partitioning failed; falling back to global CSP search\n");
  }

  // Stage 3: the exact solver.
  core::SolveConfig config;
  config.csp2.value_order = csp2::ValueOrder::kDMinusC;
  config.time_limit_ms = 30'000;
  const core::SolveReport report =
      core::solve_instance(file.tasks, file.platform, config);
  std::printf("CSP2+(D-C): %s in %.3fs\n", core::to_string(report.verdict),
              report.seconds);
  if (report.schedule.has_value()) {
    const rt::TaskSet& shown =
        report.solved_tasks.has_value() ? *report.solved_tasks : constrained;
    std::printf("%s", rt::render_schedule(shown, *report.schedule).c_str());
    std::printf("witness validated: %s\n",
                report.witness_valid ? "yes" : "NO");
  }
  return report.verdict == core::Verdict::kFeasible ? 0 : 1;
}
