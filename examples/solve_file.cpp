// Command-line solver: read an instance file, run the decision pipeline a
// practitioner would use — analytical quick tests first, then the cheap
// incomplete baselines, then the exact CSP solver — and print the outcome.
//
//   ./solve_file path/to/instance.txt
//   ./solve_file --demo                    # writes and solves a sample file
//   ./solve_file instance.txt --timeout-ms 5000 --retries 2 --json
//
// --timeout-ms MS   wall budget for the exact solve (default 30000)
// --retries N       re-attempt crash-type failures up to N times, with
//                   widened budgets and fresh seeds (core::BatchPolicy)
// --json            machine-readable SolveReport + BatchHealth on stdout
//                   (suppresses the staged human-readable narration)
//
// Instance format (see core/instance_io.hpp):
//   tasks 3
//   0 1 2 2
//   1 3 4 4
//   0 2 2 3
//   processors 2
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/tests.hpp"
#include "core/instance_io.hpp"
#include "core/solve.hpp"
#include "partition/partition.hpp"
#include "rt/gantt.hpp"

namespace {

constexpr const char* kDemo =
    "# Example 1 of the paper\n"
    "tasks 3\n"
    "0 1 2 2\n"
    "1 3 4 4\n"
    "0 2 2 3\n"
    "processors 2\n";

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void print_json(const mgrts::core::SolveReport& report,
                const mgrts::core::BatchHealth& health) {
  using mgrts::core::to_string;
  std::printf("{\n");
  std::printf("  \"verdict\": \"%s\",\n", to_string(report.verdict));
  std::printf("  \"complete\": %s,\n", report.complete ? "true" : "false");
  std::printf("  \"cause\": \"%s\",\n", to_string(report.cause));
  std::printf("  \"decided_by\": \"%s\",\n",
              json_escape(report.decided_by).c_str());
  std::printf("  \"seconds\": %.6f,\n", report.seconds);
  std::printf("  \"nodes\": %lld,\n", static_cast<long long>(report.nodes));
  std::printf("  \"witness\": %s,\n",
              report.schedule.has_value() ? "true" : "false");
  std::printf("  \"witness_valid\": %s,\n",
              report.witness_valid ? "true" : "false");
  std::printf("  \"detail\": \"%s\",\n", json_escape(report.detail).c_str());
  std::printf("  \"propagators\": [");
  for (std::size_t k = 0; k < report.propagators.size(); ++k) {
    const mgrts::core::PropagatorStats& row = report.propagators[k];
    std::printf("%s\n    {\"name\": \"%s\", \"wakes\": %lld, \"runs\": %lld, "
                "\"prunes\": %lld, \"seconds\": %.6f}",
                k == 0 ? "" : ",", json_escape(row.name).c_str(),
                static_cast<long long>(row.wakes),
                static_cast<long long>(row.runs),
                static_cast<long long>(row.prunes), row.seconds);
  }
  std::printf("%s],\n", report.propagators.empty() ? "" : "\n  ");
  std::printf("  \"health\": {\n");
  std::printf("    \"failures\": %lld,\n",
              static_cast<long long>(health.failures));
  std::printf("    \"retries\": %lld,\n",
              static_cast<long long>(health.retries));
  std::printf("    \"recovered\": %lld,\n",
              static_cast<long long>(health.recovered));
  std::printf("    \"quarantined\": %lld,\n",
              static_cast<long long>(health.quarantined));
  std::printf("    \"first_error\": \"%s\"\n",
              json_escape(health.first_error).c_str());
  std::printf("  }\n");
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgrts;

  std::string path;
  bool demo = false;
  bool json = false;
  std::int64_t timeout_ms = 30'000;
  std::int32_t retries = 0;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::stoll(value());
    } else if (arg == "--retries") {
      retries = static_cast<std::int32_t>(std::stol(value()));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }

  std::string text;
  if (!path.empty() && !demo) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    if (!json) std::printf("(demo instance)\n%s\n", kDemo);
    text = kDemo;
  }

  core::InstanceFile file;
  try {
    file = core::read_instance_string(text);
  } catch (const Error& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 2;
  }

  const rt::TaskSet constrained = file.tasks.is_constrained()
                                      ? file.tasks
                                      : file.tasks.to_constrained();
  if (!json) {
    std::printf("instance: n=%d, %s, T=%lld, U=%.3f\n", constrained.size(),
                file.platform.describe().c_str(),
                static_cast<long long>(constrained.hyperperiod()),
                constrained.utilization().to_double());
  }

  // Stage 1 + 2 narration only in human mode; the JSON path reports the
  // pipeline's own provenance (decided_by) instead.
  if (!json && file.platform.is_identical()) {
    const auto quick =
        analysis::quick_decide(constrained, file.platform.processors());
    std::printf("analysis: %s (%s)\n", analysis::to_string(quick.verdict),
                quick.test);
    if (quick.verdict != analysis::TestVerdict::kUnknown) {
      std::printf("decided without search: %s\n", quick.detail.c_str());
      return quick.verdict == analysis::TestVerdict::kFeasible ? 0 : 1;
    }

    const auto packed = partition::partition_tasks(
        constrained, file.platform.processors());
    if (packed.found) {
      std::printf(
          "partitioned first-fit suffices (no migration needed):\n%s",
          rt::render_schedule(constrained, *packed.schedule).c_str());
      return 0;
    }
    std::printf("partitioning failed; falling back to global CSP search\n");
  }

  // The exact solve, as one batch job so --retries rides the containment
  // machinery (crash-type retry, quarantine, BatchHealth accounting).
  core::SolveConfig config;
  config.csp2.value_order = csp2::ValueOrder::kDMinusC;
  config.time_limit_ms = timeout_ms;

  core::BatchPolicy policy;
  policy.workers = 1;
  policy.max_attempts = retries + 1;

  core::BatchHealth health;
  const std::vector<core::SolveReport> reports = core::solve_batch(
      {core::BatchJob{file.tasks, file.platform, config}}, policy, &health);
  const core::SolveReport& report = reports.front();

  if (json) {
    print_json(report, health);
  } else {
    std::printf("CSP2+(D-C): %s in %.3fs (decided by %s)\n",
                core::to_string(report.verdict), report.seconds,
                report.decided_by.c_str());
    if (health.retries > 0) {
      std::printf("health: %lld failures, %lld retries, %lld recovered\n",
                  static_cast<long long>(health.failures),
                  static_cast<long long>(health.retries),
                  static_cast<long long>(health.recovered));
    }
    if (report.schedule.has_value()) {
      const rt::TaskSet& shown =
          report.solved_tasks.has_value() ? *report.solved_tasks : constrained;
      std::printf("%s", rt::render_schedule(shown, *report.schedule).c_str());
      std::printf("witness validated: %s\n",
                  report.witness_valid ? "yes" : "NO");
    }
  }
  return report.verdict == core::Verdict::kFeasible ? 0 : 1;
}
