// Runtime dispatching of a CSP schedule with early completions.
//
// After Theorem 1 the paper notes that the CSP schedule budgets worst-case
// execution; when a job finishes early "the processor is considered idled
// in order to avoid scheduling anomalies".  This example solves an
// instance, then replays the table for several hyperperiods with random
// actual demands <= WCET and shows that no deadline is ever missed while
// idle time appears exactly where jobs underran.
//
// Build & run:  ./runtime_dispatch [seed]
#include <cstdio>
#include <cstdlib>

#include "core/solve.hpp"
#include "rt/dispatcher.hpp"
#include "rt/gantt.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace mgrts;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  const rt::TaskSet tasks = rt::TaskSet::from_params({
      {0, 1, 2, 2},
      {1, 3, 4, 4},
      {0, 2, 2, 3},
  });
  const rt::Platform platform = rt::Platform::identical(2);

  const core::SolveReport report = core::solve_instance(tasks, platform);
  if (report.verdict != core::Verdict::kFeasible) {
    std::printf("unexpected: instance infeasible\n");
    return 1;
  }
  // The default facade path is the staged pipeline; on this identical
  // platform the flow-oracle presolve stage supplies the witness before
  // any search runs.  The exit code asserts the provenance (this example
  // doubles as a ctest smoke test).
  std::printf("decided by: %s (witness validated: %s)\n",
              report.decided_by.c_str(), report.witness_valid ? "yes" : "NO");
  if (report.decided_by != "flow-oracle" || !report.witness_valid ||
      !report.schedule.has_value()) {
    std::printf("FAIL: expected a validated flow-oracle presolve witness\n");
    return 1;
  }
  std::printf("cyclic table (WCET budget):\n%s\n",
              rt::render_schedule(tasks, *report.schedule).c_str());

  support::Rng rng(seed);
  const auto trace = rt::dispatch_table(
      tasks, platform, *report.schedule,
      [&](rt::TaskId i, std::int64_t) {
        // Jobs use between 1 unit and their full WCET.
        return rng.uniform(1, tasks[i].wcet());
      },
      /*hyperperiods=*/4);

  std::printf("dispatched %zu jobs over 4 hyperperiods\n", trace.jobs.size());
  std::printf("slots idled by early completion: %lld\n",
              static_cast<long long>(trace.idle_injected));
  long long misses = 0;
  for (const auto& job : trace.jobs) {
    if (!job.met()) ++misses;
  }
  std::printf("deadline misses: %lld (anomaly-avoidance guarantees 0)\n",
              misses);

  // A few sample completions.
  std::printf("\nsample job outcomes:\n");
  for (std::size_t k = 0; k < trace.jobs.size() && k < 8; ++k) {
    const auto& job = trace.jobs[k];
    std::printf(
        "  tau%d job %lld: released %lld, demanded %lld/%lld, done at %lld, "
        "deadline %lld -> %s\n",
        job.task + 1, static_cast<long long>(job.job),
        static_cast<long long>(job.release),
        static_cast<long long>(job.actual),
        static_cast<long long>(tasks[job.task].wcet()),
        static_cast<long long>(job.completed_at),
        static_cast<long long>(job.abs_deadline),
        job.met() ? "met" : "MISS");
  }
  return misses == 0 ? 0 : 1;
}
